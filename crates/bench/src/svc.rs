//! Service load generation: scenario corpora, traffic replay, and the
//! `BENCH_service.json` trajectory record.
//!
//! A *scenario* is a named job mix (graph family × clique size × algorithm
//! × engine × priority/deadline). The load generator replays the whole mix
//! through a fresh [`Service`] at each requested worker count — consuming
//! the results through [`Service::stream`], the way a latency-sensitive
//! tenant would — cross-checks that every pool size produced
//! byte-identical answers, and records jobs/s, p50/p95 latency,
//! **time-to-first-result**, the **deadline-miss rate**, and the
//! corpus-cache hit rate. Corpora repeat specs on purpose — a query
//! service's traffic does — so a run always exercises the cache; the
//! priority-mix scenario carries two deterministic deadline misses on
//! purpose, so the miss-rate column is exercised too.

use std::collections::HashMap;
use std::time::Duration;

use clique_listing::{EngineChoice, ListingConfig};
use service::sched::SchedQueue;
use service::{Algo, GraphInput, GraphSpec, Job, JobError, Service, Ticket};

use crate::Table;

/// A named job mix.
pub struct Scenario {
    /// Display name (also recorded in the JSON trajectory).
    pub name: &'static str,
    /// The jobs, replayed in order.
    pub jobs: Vec<Job>,
}

fn cfg(engine: EngineChoice) -> ListingConfig {
    ListingConfig { engine, ..ListingConfig::default() }
}

/// The smoke corpus: small graphs, every family/algorithm/engine
/// represented, heavy spec repetition. Fast enough for CI.
pub fn small_scenarios() -> Vec<Scenario> {
    let er = GraphSpec::ErdosRenyi { n: 40, p: 0.15, seed: 7 };
    let sbm = GraphSpec::Clustered { n: 36, blocks: 3, p_in: 0.5, p_out: 0.02, seed: 4 };
    let rmat = GraphSpec::Rmat { scale: 5, edges: 160, a: 0.57, b: 0.19, c: 0.19, seed: 11 };
    let geo = GraphSpec::RandomGeometric { n: 40, radius: 0.28, seed: 9 };
    let planted = GraphSpec::PlantedCliques { n: 36, base_p: 0.06, size: 4, count: 3, seed: 5 };
    vec![
        Scenario {
            name: "triangle-sweep",
            jobs: [&er, &sbm, &rmat, &geo]
                .into_iter()
                .flat_map(|spec| {
                    [EngineChoice::Sequential, EngineChoice::Sharded(2)]
                        .into_iter()
                        .map(|e| Job::new(GraphInput::Spec(spec.clone()), 3, cfg(e), Algo::Paper))
                })
                .collect(),
        },
        Scenario {
            name: "kp-mixed",
            jobs: vec![
                Job::new(
                    GraphInput::Spec(planted.clone()),
                    4,
                    cfg(EngineChoice::Sequential),
                    Algo::Paper,
                ),
                Job::new(GraphInput::Spec(planted), 4, cfg(EngineChoice::Sharded(2)), Algo::Paper),
                Job::new(
                    GraphInput::Spec(er.clone()),
                    4,
                    cfg(EngineChoice::Sequential),
                    Algo::Paper,
                ),
            ],
        },
        Scenario {
            name: "priority-mix",
            jobs: vec![
                // bulk background traffic at priority 0
                Job::new(
                    GraphInput::Spec(er.clone()),
                    3,
                    cfg(EngineChoice::Sequential),
                    Algo::Paper,
                ),
                Job::new(
                    GraphInput::Spec(geo.clone()),
                    3,
                    cfg(EngineChoice::Sharded(2)),
                    Algo::Paper,
                ),
                Job::new(
                    GraphInput::Spec(sbm.clone()),
                    3,
                    cfg(EngineChoice::Sequential),
                    Algo::Paper,
                ),
                // urgent tenants, submitted behind the bulk — the
                // scheduler must pull them forward
                Job::new(
                    GraphInput::Spec(er.clone()),
                    3,
                    cfg(EngineChoice::Sequential),
                    Algo::Paper,
                )
                .with_priority(9)
                .with_deadline_rounds(5_000_000),
                Job::new(
                    GraphInput::Spec(rmat.clone()),
                    3,
                    cfg(EngineChoice::Sharded(2)),
                    Algo::Paper,
                )
                .with_priority(9),
                // deterministic deadline misses: a zero budget cannot
                // finish on a nontrivial graph (exercises the miss-rate
                // column; the answers stay byte-stable)
                Job::new(
                    GraphInput::Spec(er.clone()),
                    3,
                    cfg(EngineChoice::Sequential),
                    Algo::Paper,
                )
                .with_priority(4)
                .with_deadline_rounds(0),
                Job::new(
                    GraphInput::Spec(geo.clone()),
                    3,
                    cfg(EngineChoice::Sharded(2)),
                    Algo::Paper,
                )
                .with_deadline_rounds(0),
            ],
        },
        Scenario {
            name: "baseline-mix",
            jobs: vec![
                Job::new(
                    GraphInput::Spec(er.clone()),
                    3,
                    cfg(EngineChoice::Sequential),
                    Algo::Naive,
                ),
                Job::new(
                    GraphInput::Spec(er.clone()),
                    3,
                    cfg(EngineChoice::Sequential),
                    Algo::Randomized { seed: 13 },
                ),
                Job::new(GraphInput::Spec(er), 3, cfg(EngineChoice::Sequential), Algo::Dlp12),
            ],
        },
    ]
}

/// The full corpus: the smoke mix plus larger graphs and deeper repeats —
/// the `loadgen` binary's default.
pub fn full_scenarios() -> Vec<Scenario> {
    let mut scenarios = small_scenarios();
    let big_er = GraphSpec::ErdosRenyi { n: 96, p: 0.12, seed: 21 };
    let big_rmat = GraphSpec::Rmat { scale: 7, edges: 900, a: 0.57, b: 0.19, c: 0.19, seed: 22 };
    let big_geo = GraphSpec::RandomGeometric { n: 96, radius: 0.17, seed: 23 };
    let plaw = GraphSpec::PowerLaw { n: 80, attach: 4, seed: 24 };
    scenarios.push(Scenario {
        name: "heavy-traffic",
        jobs: (0..3)
            .flat_map(|_| {
                [&big_er, &big_rmat, &big_geo, &plaw].into_iter().map(|spec| {
                    Job::new(
                        GraphInput::Spec(spec.clone()),
                        3,
                        cfg(EngineChoice::Sequential),
                        Algo::Paper,
                    )
                })
            })
            .collect(),
    });
    scenarios
}

/// One worker-count's aggregate measurements.
pub struct LoadgenRow {
    /// Service worker count.
    pub workers: usize,
    /// Jobs completed.
    pub jobs: usize,
    /// Total wall time for the whole replay.
    pub wall: Duration,
    /// Jobs per second.
    pub jobs_per_sec: f64,
    /// Median submission-to-completion latency.
    pub p50: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// Time from batch submission to the **first streamed result** — the
    /// latency a streaming consumer actually feels, and the figure the
    /// batch-barrier design could never improve on.
    pub ttfr: Duration,
    /// Deadline misses over jobs that carried a deadline (0 when none
    /// did). Deterministic: deadlines are round budgets, not wall-clock.
    pub deadline_miss_rate: f64,
    /// Corpus-cache hit rate over the replay.
    pub hit_rate: f64,
    /// Jobs whose outcome carried a round transcript (nonzero only when
    /// the replayed jobs asked for capture, e.g. `loadgen --trace`).
    pub traced: usize,
}

/// Transcript-capture overhead: the same job mix replayed with capture off
/// and at digest fidelity, recorded as a `trace_overhead` block in
/// `BENCH_service.json` so the cost of always-on capture stays visible in
/// the trajectory.
pub struct TraceOverhead {
    /// Jobs in each replay.
    pub jobs: usize,
    /// Jobs/s with `CLIQUE_TRACE` off.
    pub jobs_per_sec_off: f64,
    /// Jobs/s at digest fidelity (every job captured, transcripts
    /// attached to outcomes, nothing written to disk).
    pub jobs_per_sec_digest: f64,
    /// Throughput cost of digest capture in percent (can dip below zero on
    /// a noisy host — both replays are identical apart from the recorder).
    pub overhead_pct: f64,
}

/// Measures [`TraceOverhead`] on the smoke corpus: one worker, cold corpus
/// on both sides, so the two replays differ only in the recorder.
pub fn trace_overhead() -> TraceOverhead {
    let jobs: Vec<Job> = small_scenarios().into_iter().flat_map(|s| s.jobs).collect();
    let traced: Vec<Job> = jobs
        .iter()
        .map(|j| {
            let mut j = j.clone();
            j.config.trace = trace::TraceMode { fidelity: trace::Fidelity::Digest, path: None };
            j
        })
        .collect();
    let time = |jobs: Vec<Job>| {
        let svc = Service::new(1);
        let n = jobs.len();
        let start = std::time::Instant::now();
        let outs = svc.run_batch(jobs);
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        (n as f64 / secs, outs)
    };
    let (off_rate, outs_off) = time(jobs);
    let (digest_rate, outs_digest) = time(traced);
    assert!(outs_off.iter().all(|o| o.trace.is_none()), "capture-off jobs must not record");
    assert!(outs_digest.iter().all(|o| o.trace.is_some()), "digest jobs must all record");
    TraceOverhead {
        jobs: outs_off.len(),
        jobs_per_sec_off: off_rate,
        jobs_per_sec_digest: digest_rate,
        overhead_pct: (off_rate - digest_rate) / off_rate * 100.0,
    }
}

/// One fault-rate point of the `--chaos` sweep.
pub struct ChaosRow {
    /// The fault spec the point ran with (`plan:<seed>:<drop_ppm>:<corrupt_ppm>:<crash_ppm>`).
    pub spec: String,
    /// Jobs that completed with an answer (everything that did not
    /// exhaust its retry budget).
    pub completed: usize,
    /// `completed / jobs` — 1.0 unless a message failed every delivery
    /// attempt.
    pub completion_rate: f64,
    /// Messages dropped by the plan (before retry) across the replay.
    pub dropped: u64,
    /// Payloads corrupted by the plan (before retry) across the replay.
    pub corrupted: u64,
    /// Crash trips charged across the replay (robust mode detects and
    /// recovers; the trip costs penalty rounds instead of killing).
    pub crashed: u64,
    /// Successful re-deliveries across the replay.
    pub retries: u64,
    /// Backoff rounds charged against the jobs' round budgets.
    pub penalty_rounds: u64,
    /// Jobs/s with this plan armed.
    pub jobs_per_sec: f64,
}

/// The `--chaos` sweep: the deadline-free smoke mix replayed under
/// increasing robust-mode fault rates, answers cross-checked against the
/// fault-free baseline, recorded as a `chaos` block in
/// `BENCH_service.json`.
pub struct ChaosReport {
    /// Jobs in each replay.
    pub jobs: usize,
    /// Jobs/s of the fault-free baseline replay.
    pub baseline_jobs_per_sec: f64,
    /// One row per fault rate, lightest first.
    pub rows: Vec<ChaosRow>,
}

/// Runs the chaos sweep on a 1-worker service: a fault-free baseline, then
/// the same deadline-free job mix with a robust fault plan armed on every
/// job at each rate. Panics if any completed faulted answer differs from
/// the baseline — the self-healing transport's whole contract — or if any
/// job fails with anything other than the typed
/// [`JobError::FaultBudgetExhausted`].
///
/// Deadline-carrying jobs are excluded on purpose: retry backoff charges
/// penalty rounds against the round budget, so a planted zero-budget miss
/// would conflate scheduler deadline misses with fault-layer losses.
pub fn chaos_sweep() -> ChaosReport {
    use congest::faults::{FaultMode, FaultPlan};
    let base: Vec<Job> = small_scenarios()
        .into_iter()
        .flat_map(|s| s.jobs)
        .filter(|j| j.meta.deadline_rounds.is_none())
        .collect();
    let time = |jobs: Vec<Job>| {
        let svc = Service::new(1);
        let n = jobs.len();
        let start = std::time::Instant::now();
        let outs = svc.run_batch(jobs);
        (n as f64 / start.elapsed().as_secs_f64().max(1e-9), outs)
    };
    let (baseline_rate, baseline) = time(base.clone());
    let reference: Vec<(usize, u64)> = baseline
        .iter()
        .map(|o| match &o.report {
            Ok(r) => (r.clique_count, r.clique_digest),
            Err(e) => panic!("fault-free baseline job failed: {e}"),
        })
        .collect();
    let rates: &[(u32, u32, u32)] =
        &[(20_000, 10_000, 0), (120_000, 60_000, 2_000), (300_000, 150_000, 5_000)];
    let rows = rates
        .iter()
        .enumerate()
        .map(|(i, &(drop_ppm, corrupt_ppm, crash_ppm))| {
            let plan = FaultPlan { seed: 0xFA01 + i as u64, drop_ppm, corrupt_ppm, crash_ppm };
            let mode = FaultMode::Robust(plan);
            let jobs: Vec<Job> = base
                .iter()
                .map(|j| {
                    let mut j = j.clone();
                    j.config.faults = mode;
                    j
                })
                .collect();
            let (rate, outs) = time(jobs);
            let mut completed = 0usize;
            let (mut dropped, mut corrupted, mut crashed, mut retries, mut penalty) =
                (0u64, 0u64, 0u64, 0u64, 0u64);
            for (k, o) in outs.iter().enumerate() {
                match &o.report {
                    Ok(r) => {
                        completed += 1;
                        assert_eq!(
                            (r.clique_count, r.clique_digest),
                            reference[k],
                            "robust job {k} answered differently under {mode}"
                        );
                        dropped += r.faults.dropped;
                        corrupted += r.faults.corrupted;
                        crashed += r.faults.crashed;
                        retries += r.faults.retries;
                        penalty += r.faults.penalty_rounds;
                    }
                    Err(JobError::FaultBudgetExhausted { .. }) => {}
                    Err(e) => panic!("chaos job {k} failed untypedly under {mode}: {e}"),
                }
            }
            ChaosRow {
                spec: mode.to_string(),
                completed,
                completion_rate: completed as f64 / outs.len().max(1) as f64,
                dropped,
                corrupted,
                crashed,
                retries,
                penalty_rounds: penalty,
                jobs_per_sec: rate,
            }
        })
        .collect();
    ChaosReport { jobs: base.len(), baseline_jobs_per_sec: baseline_rate, rows }
}

/// Tenant-mix fairness + corpus-persistence measurements, recorded in
/// `BENCH_service.json` beside the replay rows.
pub struct TenantMixReport {
    /// Fairness aging rate the scenario ran with.
    pub aging_rate: u64,
    /// Priority-255 firehose jobs replayed against the one bulk job.
    pub firehose_jobs: usize,
    /// Pop-order position of the priority-0 bulk job (0-based; `==
    /// firehose_jobs` means it popped dead last).
    pub bulk_pop_position: usize,
    /// Whether aging unstarved the bulk job (it completed strictly before
    /// the firehose drained).
    pub starvation_free: bool,
    /// Graphs persisted by the first service and reloaded by the second.
    pub persisted_graphs: usize,
    /// Corpus-cache hit rate of the *restarted* service replaying the
    /// same traffic — the cross-restart payoff of persistence.
    pub restart_hit_rate: f64,
}

/// Runs the tenant-mix fairness scenario (a priority-255 firehose fed one
/// job per completion against one priority-0 bulk job on a 1-worker,
/// aging-rate-8 service — rate 8 puts the aging crossover at
/// `⌈256/8⌉ = 32` ticks, well inside the firehose) and the
/// corpus-persistence restart scenario (replay a spec-heavy mix, drop the
/// service — persisting its corpus — then replay through a fresh service
/// that warm-loads it).
pub fn tenant_mix_and_persistence() -> TenantMixReport {
    // fairness under a firehose (the shared scenario the scheduler
    // regression tests pin; see service::testing)
    let aging_rate = 8;
    let firehose = 120;
    let svc = Service::new(1).with_aging(aging_rate).with_pop_log();
    let bulk_pop_position = service::testing::firehose_bulk_position(&svc, firehose, 16);
    drop(svc);

    // persistence across a restart
    let path =
        std::env::temp_dir().join(format!("clique-loadgen-corpus-{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let jobs: Vec<Job> = small_scenarios().into_iter().flat_map(|s| s.jobs).collect();
    {
        let first = Service::new(1).with_corpus_path(&path);
        let _ = first.run_batch(jobs.clone());
        // drop persists the corpus
    }
    let restarted = Service::new(1).with_corpus_path(&path);
    let persisted_graphs = restarted.corpus_len();
    let _ = restarted.run_batch(jobs);
    let stats = restarted.corpus_stats();
    drop(restarted);
    let _ = std::fs::remove_file(&path);

    TenantMixReport {
        aging_rate,
        firehose_jobs: firehose,
        bulk_pop_position,
        starvation_free: bulk_pop_position < firehose,
        persisted_graphs,
        restart_hit_rate: stats.hit_rate(),
    }
}

/// Socket front-end measurements for the `--socket` mode: the scenario mix
/// replayed over real TCP connections (one per tenant) against an
/// in-process replay of the identical jobs, plus forced shed and
/// rate-limit phases — recorded as a `wire` block in `BENCH_service.json`.
pub struct WireBenchReport {
    /// Jobs in the identity phase.
    pub jobs: usize,
    /// Tenant connections the jobs were spread over.
    pub tenants: usize,
    /// Wall time of the socket replay (submit to last outcome frame).
    pub wall: Duration,
    /// Jobs/s over the socket.
    pub jobs_per_sec: f64,
    /// Median client-observed latency (submit frame to outcome frame).
    pub p50: Duration,
    /// 95th-percentile client-observed latency.
    pub p95: Duration,
    /// Jobs/s of the in-process replay of the same jobs.
    pub inproc_jobs_per_sec: f64,
    /// Median in-process submission-to-completion latency.
    pub inproc_p50: Duration,
    /// 95th-percentile in-process latency.
    pub inproc_p95: Duration,
    /// Whether every socket answer was byte-identical to its in-process
    /// twin (`format!("{:?}", report)` comparison, errors included).
    pub identical: bool,
    /// Submissions shed by a cap-0 queue, surfaced as typed error frames.
    pub shed: usize,
    /// Submissions denied by a hard tenant quota (refill 0).
    pub rate_limited: usize,
}

/// Runs the three socket phases on loopback: (1) the scenario mix over one
/// connection per tenant, verified **byte-identical** to an in-process
/// replay of the exact same reconstructed jobs; (2) a cap-0 queue shedding
/// every submission as typed `Shed` frames; (3) a burst-2/refill-0 hard
/// quota denying everything past the burst as `RateLimited` frames.
/// Panics if any phase misbehaves structurally (a lost outcome, a refusal
/// where an answer was due, or vice versa).
pub fn wire_bench(scenarios: &[Scenario], workers: usize) -> WireBenchReport {
    use wire::{Frame, Quota, ServeExt, ServerConfig, WireClient, WireJob, WireRefusal};
    const TENANTS: usize = 3;
    let jobs: Vec<(u32, WireJob)> = scenarios
        .iter()
        .flat_map(|s| s.jobs.iter())
        .enumerate()
        .map(|(i, j)| (1 + (i % TENANTS) as u32, WireJob::from_job(j)))
        .collect();

    // in-process baseline: the exact jobs the server will reconstruct
    let inproc = Service::new(workers);
    let start = std::time::Instant::now();
    let tickets: Vec<Ticket> = jobs
        .iter()
        .map(|(tenant, wj)| inproc.try_submit(wj.clone().into_job(*tenant)).expect("uncapped"))
        .collect();
    let outcomes: Vec<service::JobOutcome> = tickets.into_iter().map(|t| inproc.wait(t)).collect();
    let inproc_wall = start.elapsed();
    let expected: Vec<String> = outcomes.iter().map(|o| format!("{:?}", o.report)).collect();
    let mut inproc_lat: Vec<Duration> = outcomes.iter().map(|o| o.latency).collect();
    inproc_lat.sort_unstable();

    // identity phase: fresh service behind a real TCP server
    let svc = std::sync::Arc::new(Service::new(workers));
    let server = svc.serve("127.0.0.1:0").expect("bind an ephemeral loopback port");
    let addr = server.local_addr();
    let start = std::time::Instant::now();
    let mut clients: Vec<(u32, WireClient, usize)> = (1..=TENANTS as u32)
        .map(|t| (t, WireClient::connect(addr, t).expect("connect"), 0usize))
        .collect();
    let mut submitted_at: HashMap<u64, std::time::Instant> = HashMap::new();
    for (id, (tenant, wj)) in jobs.iter().enumerate() {
        let slot = clients.iter_mut().find(|(t, _, _)| t == tenant).expect("tenant client");
        submitted_at.insert(id as u64, std::time::Instant::now());
        slot.1.submit(id as u64, wj.clone()).expect("submit");
        slot.2 += 1;
    }
    let mut answers: Vec<Option<String>> = vec![None; jobs.len()];
    let mut wire_lat: Vec<Duration> = Vec::new();
    for (_, client, want) in &mut clients {
        for _ in 0..*want {
            match client.next_event().expect("server frame") {
                Frame::Outcome { request_id, outcome } => {
                    wire_lat.push(submitted_at[&request_id].elapsed());
                    answers[request_id as usize] = Some(format!("{:?}", outcome.report));
                }
                other => panic!("unexpected frame in the identity phase: {other:?}"),
            }
        }
    }
    let wall = start.elapsed();
    drop(server);
    let answers: Vec<String> =
        answers.into_iter().map(|a| a.expect("every job answered")).collect();
    let identical = answers == expected;
    wire_lat.sort_unstable();

    // shed phase: a cap-0 queue sheds every submission as a typed frame
    // on a connection that stays healthy
    let shed_svc = std::sync::Arc::new(Service::new(1).with_queue_cap(0));
    let shed_server = shed_svc.serve("127.0.0.1:0").expect("bind");
    let mut shed_client = WireClient::connect(shed_server.local_addr(), 9).expect("connect");
    let mut shed = 0usize;
    for id in 0..3u64 {
        shed_client.submit(id, jobs[0].1.clone()).expect("submit");
        match shed_client.next_event().expect("frame") {
            Frame::Error { refusal: WireRefusal::Shed { .. }, .. } => shed += 1,
            other => panic!("expected a shed refusal, got {other:?}"),
        }
    }
    drop(shed_server);

    // rate-limit phase: a hard quota (refill 0) admits exactly the burst
    let rl_svc = std::sync::Arc::new(Service::new(1));
    let cfg = ServerConfig {
        default_quota: Quota { burst: 2, refill_per_tick: 0 },
        ..ServerConfig::default()
    };
    let rl_server = rl_svc.serve_with("127.0.0.1:0", cfg).expect("bind");
    let mut rl_client = WireClient::connect(rl_server.local_addr(), 9).expect("connect");
    for id in 0..5u64 {
        rl_client.submit(id, jobs[0].1.clone()).expect("submit");
    }
    let (mut rate_limited, mut served) = (0usize, 0usize);
    while served + rate_limited < 5 {
        match rl_client.next_event().expect("frame") {
            Frame::Error { refusal: WireRefusal::RateLimited { .. }, .. } => rate_limited += 1,
            Frame::Outcome { .. } => served += 1,
            other => panic!("unexpected frame in the rate-limit phase: {other:?}"),
        }
    }
    drop(rl_server);

    WireBenchReport {
        jobs: jobs.len(),
        tenants: TENANTS,
        wall,
        jobs_per_sec: jobs.len() as f64 / wall.as_secs_f64().max(1e-9),
        p50: percentile(&wire_lat, 0.50),
        p95: percentile(&wire_lat, 0.95),
        inproc_jobs_per_sec: jobs.len() as f64 / inproc_wall.as_secs_f64().max(1e-9),
        inproc_p50: percentile(&inproc_lat, 0.50),
        inproc_p95: percentile(&inproc_lat, 0.95),
        identical,
        shed,
        rate_limited,
    }
}

/// The aging rate the depth microbenchmark runs both queues at — nonzero
/// so every pop recomputes effective priorities, the way live traffic
/// does.
pub const SCHED_DEPTH_AGING_RATE: u64 = 8;

/// One depth point of the scheduler microbenchmark: pop throughput of the
/// two-tier queue against a faithful reimplementation of the old
/// `O(queued)` linear scan, on an identical workload.
pub struct SchedDepthRow {
    /// Queued entries when the measured pops began.
    pub depth: usize,
    /// Pops/s through [`SchedQueue`] (select + take + complete).
    pub new_pops_per_sec: f64,
    /// Pops/s through the linear-scan reference.
    pub old_pops_per_sec: f64,
    /// `new_pops_per_sec / old_pops_per_sec`.
    pub speedup: f64,
}

/// The pre-v3 scheduler select, reimplemented for comparison: one full
/// pass over a flat `Vec` per pop, computing each entry's saturated
/// effective priority and maximizing (effective desc, round-robin
/// distance asc, seq asc), then removing by index.
struct LinearScanQueue {
    entries: Vec<(u64, u8, u32, u64)>, // (seq, priority, tenant, enqueue_tick)
    ticks: u64,
    rr_cursor: u32,
    aging_rate: u64,
}

impl LinearScanQueue {
    fn pop(&mut self) -> Option<u64> {
        use std::cmp::Reverse;
        let mut best: Option<(usize, Reverse<u64>, u32, u64)> = None;
        for (i, &(seq, priority, tenant, enqueue_tick)) in self.entries.iter().enumerate() {
            let eff = (priority as u64)
                .saturating_add(self.aging_rate.saturating_mul(self.ticks - enqueue_tick));
            let dist = tenant.wrapping_sub(self.rr_cursor);
            let rank = (Reverse(eff), dist, seq);
            if best.as_ref().is_none_or(|&(_, e, d, s)| rank < (e, d, s)) {
                best = Some((i, rank.0, rank.1, rank.2));
            }
        }
        let (idx, ..) = best?;
        let (seq, _, tenant, _) = self.entries.remove(idx);
        self.rr_cursor = tenant.wrapping_add(1);
        self.ticks += 1; // pop + complete fused: a single-worker drain
        Some(seq)
    }
}

/// Deterministic splitmix64 — the workload generator for the depth
/// microbenchmark (no external RNG dependency in release deps).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Measures pop throughput at each depth: both structures are filled with
/// an identical pseudorandom workload (priorities `0..=255`, 64 tenants,
/// and the aging clock advanced every 256 pushes so enqueue ticks spread
/// the way live traffic's do), then a pop+complete drain is timed. The
/// two-tier queue drains up to 10k measured pops; the linear scan's pop
/// count is capped at 200 beyond depth 10k — each of its pops walks the
/// whole backlog, so a full drain at depth 10⁶ would be `O(depth²)` —
/// and both are normalized to pops/s.
pub fn sched_depth(depths: &[usize]) -> Vec<SchedDepthRow> {
    depths
        .iter()
        .map(|&depth| {
            let mut rng = 0x5EED_u64 ^ (depth as u64).rotate_left(17);
            let jobs: Vec<(u8, u32)> = (0..depth)
                .map(|_| {
                    let r = splitmix64(&mut rng);
                    ((r & 0xff) as u8, ((r >> 8) % 64) as u32)
                })
                .collect();

            let mut q: SchedQueue<()> = SchedQueue::new();
            q.set_aging_rate(SCHED_DEPTH_AGING_RATE);
            for (i, &(priority, tenant)) in jobs.iter().enumerate() {
                if i % 256 == 255 {
                    // an idle tenant's completion is a pure aging tick —
                    // it spreads enqueue ticks without draining the fill
                    q.complete(u32::MAX);
                }
                q.push(i as u64, priority, tenant, false, ());
            }
            let new_pops = depth.min(10_000);
            let start = std::time::Instant::now();
            for _ in 0..new_pops {
                let sel = q.select(true).expect("the fill outlasts the measured pops");
                let tenant = q.take(sel).tenant;
                q.complete(tenant);
            }
            let new_rate = new_pops as f64 / start.elapsed().as_secs_f64().max(1e-9);

            let mut old = LinearScanQueue {
                entries: Vec::with_capacity(depth),
                ticks: 0,
                rr_cursor: 0,
                aging_rate: SCHED_DEPTH_AGING_RATE,
            };
            for (i, &(priority, tenant)) in jobs.iter().enumerate() {
                if i % 256 == 255 {
                    old.ticks += 1;
                }
                old.entries.push((i as u64, priority, tenant, old.ticks));
            }
            let old_pops = if depth > 10_000 { 200 } else { depth.min(2_000) };
            let start = std::time::Instant::now();
            for _ in 0..old_pops {
                old.pop().expect("the fill outlasts the measured pops");
            }
            let old_rate = old_pops as f64 / start.elapsed().as_secs_f64().max(1e-9);

            SchedDepthRow {
                depth,
                new_pops_per_sec: new_rate,
                old_pops_per_sec: old_rate,
                speedup: new_rate / old_rate,
            }
        })
        .collect()
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Replays every scenario through a fresh [`Service`] per worker count,
/// consuming results via [`Service::stream`] (completion order — the
/// first pair to arrive times the `ttfr` column).
///
/// Returns the per-worker-count rows; panics if any job fails with
/// anything other than a deterministic [`JobError::DeadlineExceeded`], or
/// if two worker counts disagree on any answer — success *or* miss — (the
/// service determinism guarantee, enforced at measurement time exactly
/// like the engine checksum in the `eng` experiment).
pub fn replay(worker_counts: &[usize], scenarios: &[Scenario]) -> Vec<LoadgenRow> {
    let jobs: Vec<Job> = scenarios.iter().flat_map(|s| s.jobs.iter().cloned()).collect();
    let with_deadline = jobs.iter().filter(|j| j.meta.deadline_rounds.is_some()).count();
    let mut reference: Option<Vec<String>> = None;
    let mut rows = Vec::new();
    for &workers in worker_counts {
        let svc = Service::new(workers);
        let start = std::time::Instant::now();
        let stream = svc.stream(jobs.clone());
        let tickets = stream.tickets().to_vec();
        let mut ttfr = Duration::ZERO;
        let mut streamed: HashMap<Ticket, service::JobOutcome> = HashMap::new();
        for (i, (ticket, outcome)) in stream.enumerate() {
            if i == 0 {
                ttfr = start.elapsed();
            }
            streamed.insert(ticket, outcome);
        }
        let wall = start.elapsed();
        // submission order, exactly like run_batch would return
        let outcomes: Vec<service::JobOutcome> = tickets
            .iter()
            .map(|t| streamed.remove(t).expect("stream yields every ticket"))
            .collect();
        let answers: Vec<String> = outcomes.iter().map(|o| format!("{:?}", o.report)).collect();
        let mut deadline_misses = 0usize;
        for (i, o) in outcomes.iter().enumerate() {
            match &o.report {
                Ok(_) => {}
                Err(JobError::DeadlineExceeded { .. }) => deadline_misses += 1,
                Err(e) => panic!("job {i} failed: {e}"),
            }
        }
        match &reference {
            None => reference = Some(answers),
            Some(r) => assert_eq!(
                r, &answers,
                "answers diverged between worker counts — determinism violated"
            ),
        }
        let stats = svc.corpus_stats();
        let traced = outcomes.iter().filter(|o| o.trace.is_some()).count();
        let mut latencies: Vec<Duration> = outcomes.iter().map(|o| o.latency).collect();
        latencies.sort_unstable();
        rows.push(LoadgenRow {
            workers,
            jobs: outcomes.len(),
            wall,
            jobs_per_sec: outcomes.len() as f64 / wall.as_secs_f64().max(1e-9),
            p50: percentile(&latencies, 0.50),
            p95: percentile(&latencies, 0.95),
            ttfr,
            deadline_miss_rate: deadline_misses as f64 / with_deadline.max(1) as f64,
            hit_rate: stats.hit_rate(),
            traced,
        });
    }
    rows
}

/// Prints the loadgen table and writes `BENCH_service.json` — the
/// cross-PR trajectory record (jobs/s, p50/p95 latency, time-to-first-
/// result, deadline-miss rate, cache hit rate per worker count, plus the
/// tenant-mix fairness, corpus-persistence, and transcript-capture-
/// overhead measurements).
pub fn report(
    scenarios: &[Scenario],
    rows: &[LoadgenRow],
    mix: &TenantMixReport,
    overhead: &TraceOverhead,
    depth_rows: Option<&[SchedDepthRow]>,
    chaos: Option<&ChaosReport>,
    wire: Option<&WireBenchReport>,
) {
    let mut t = Table::new(&[
        "workers",
        "jobs",
        "wall ms",
        "jobs/s",
        "p50 ms",
        "p95 ms",
        "ttfr ms",
        "miss rate",
        "hit rate",
    ]);
    let mut rows_json = Vec::new();
    for r in rows {
        t.row(vec![
            r.workers.to_string(),
            r.jobs.to_string(),
            format!("{:.1}", r.wall.as_secs_f64() * 1e3),
            format!("{:.1}", r.jobs_per_sec),
            format!("{:.2}", r.p50.as_secs_f64() * 1e3),
            format!("{:.2}", r.p95.as_secs_f64() * 1e3),
            format!("{:.2}", r.ttfr.as_secs_f64() * 1e3),
            format!("{:.3}", r.deadline_miss_rate),
            format!("{:.3}", r.hit_rate),
        ]);
        rows_json.push(format!(
            concat!(
                "    {{\"workers\": {}, \"jobs\": {}, \"wall_ms\": {:.3}, ",
                "\"jobs_per_sec\": {:.3}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, ",
                "\"ttfr_ms\": {:.4}, \"deadline_miss_rate\": {:.4}, ",
                "\"cache_hit_rate\": {:.4}}}"
            ),
            r.workers,
            r.jobs,
            r.wall.as_secs_f64() * 1e3,
            r.jobs_per_sec,
            r.p50.as_secs_f64() * 1e3,
            r.p95.as_secs_f64() * 1e3,
            r.ttfr.as_secs_f64() * 1e3,
            r.deadline_miss_rate,
            r.hit_rate,
        ));
    }
    t.print();
    println!(
        "\ntenant mix: bulk job popped at {}/{} (aging rate {}, starvation-free: {}); \
         persistence: {} graphs reloaded, restart hit rate {:.3}",
        mix.bulk_pop_position,
        mix.firehose_jobs,
        mix.aging_rate,
        mix.starvation_free,
        mix.persisted_graphs,
        mix.restart_hit_rate
    );
    let names: Vec<String> = scenarios.iter().map(|s| format!("\"{}\"", s.name)).collect();
    let mix_json = format!(
        concat!(
            "  \"tenant_mix\": {{\"aging_rate\": {}, \"firehose_jobs\": {}, ",
            "\"bulk_pop_position\": {}, \"starvation_free\": {}, ",
            "\"persisted_graphs\": {}, \"restart_hit_rate\": {:.4}}},"
        ),
        mix.aging_rate,
        mix.firehose_jobs,
        mix.bulk_pop_position,
        mix.starvation_free,
        mix.persisted_graphs,
        mix.restart_hit_rate
    );
    println!(
        "trace overhead: {} jobs — {:.1} jobs/s capture off vs {:.1} jobs/s digest ({:+.1}%)",
        overhead.jobs,
        overhead.jobs_per_sec_off,
        overhead.jobs_per_sec_digest,
        overhead.overhead_pct
    );
    let overhead_json = format!(
        concat!(
            "  \"trace_overhead\": {{\"jobs\": {}, \"jobs_per_sec_off\": {:.3}, ",
            "\"jobs_per_sec_digest\": {:.3}, \"overhead_pct\": {:.2}}},"
        ),
        overhead.jobs,
        overhead.jobs_per_sec_off,
        overhead.jobs_per_sec_digest,
        overhead.overhead_pct
    );
    let depth_json = depth_rows
        .map(|drs| {
            let mut dt =
                Table::new(&["queue depth", "new pops/s", "linear-scan pops/s", "speedup"]);
            let mut items = Vec::new();
            for d in drs {
                dt.row(vec![
                    d.depth.to_string(),
                    format!("{:.0}", d.new_pops_per_sec),
                    format!("{:.0}", d.old_pops_per_sec),
                    format!("{:.1}x", d.speedup),
                ]);
                items.push(format!(
                    concat!(
                        "    {{\"depth\": {}, \"new_pops_per_sec\": {:.1}, ",
                        "\"old_pops_per_sec\": {:.1}, \"speedup\": {:.2}}}"
                    ),
                    d.depth, d.new_pops_per_sec, d.old_pops_per_sec, d.speedup
                ));
            }
            println!("\nscheduler pop throughput (aging rate {SCHED_DEPTH_AGING_RATE}):");
            dt.print();
            format!(
                "  \"sched_depth\": {{\"aging_rate\": {}, \"rows\": [\n{}\n  ]}},\n",
                SCHED_DEPTH_AGING_RATE,
                items.join(",\n")
            )
        })
        .unwrap_or_default();
    let chaos_json = chaos
        .map(|c| {
            let mut ct = Table::new(&[
                "fault plan",
                "completion",
                "dropped",
                "corrupted",
                "crashed",
                "retries",
                "penalty rds",
                "jobs/s",
            ]);
            let mut items = Vec::new();
            for r in &c.rows {
                ct.row(vec![
                    r.spec.clone(),
                    format!("{}/{}", r.completed, c.jobs),
                    r.dropped.to_string(),
                    r.corrupted.to_string(),
                    r.crashed.to_string(),
                    r.retries.to_string(),
                    r.penalty_rounds.to_string(),
                    format!("{:.1}", r.jobs_per_sec),
                ]);
                items.push(format!(
                    concat!(
                        "    {{\"spec\": \"{}\", \"completed\": {}, ",
                        "\"completion_rate\": {:.4}, \"dropped\": {}, ",
                        "\"corrupted\": {}, \"crashed\": {}, \"retries\": {}, ",
                        "\"penalty_rounds\": {}, \"jobs_per_sec\": {:.3}, ",
                        "\"throughput_vs_baseline_pct\": {:.2}}}"
                    ),
                    r.spec,
                    r.completed,
                    r.completion_rate,
                    r.dropped,
                    r.corrupted,
                    r.crashed,
                    r.retries,
                    r.penalty_rounds,
                    r.jobs_per_sec,
                    (r.jobs_per_sec / c.baseline_jobs_per_sec.max(1e-9) - 1.0) * 100.0,
                ));
            }
            println!(
                "\nchaos sweep ({} jobs, baseline {:.1} jobs/s; robust answers \
                 verified against fault-free):",
                c.jobs, c.baseline_jobs_per_sec
            );
            ct.print();
            format!(
                "  \"chaos\": {{\"jobs\": {}, \"baseline_jobs_per_sec\": {:.3}, \"rows\": [\n{}\n  ]}},\n",
                c.jobs,
                c.baseline_jobs_per_sec,
                items.join(",\n")
            )
        })
        .unwrap_or_default();
    let wire_json = wire
        .map(|w| {
            println!(
                "\nwire: {} jobs over {} tenant connections — {:.1} jobs/s socket vs {:.1} \
                 in-process (p50 {:.2} vs {:.2} ms, p95 {:.2} vs {:.2} ms); identical: {}, \
                 shed: {}, rate-limited: {}",
                w.jobs,
                w.tenants,
                w.jobs_per_sec,
                w.inproc_jobs_per_sec,
                w.p50.as_secs_f64() * 1e3,
                w.inproc_p50.as_secs_f64() * 1e3,
                w.p95.as_secs_f64() * 1e3,
                w.inproc_p95.as_secs_f64() * 1e3,
                w.identical,
                w.shed,
                w.rate_limited
            );
            format!(
                concat!(
                    "  \"wire\": {{\"jobs\": {}, \"tenants\": {}, \"wall_ms\": {:.3}, ",
                    "\"jobs_per_sec\": {:.3}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, ",
                    "\"inproc_jobs_per_sec\": {:.3}, \"inproc_p50_ms\": {:.4}, ",
                    "\"inproc_p95_ms\": {:.4}, \"identical\": {}, \"shed\": {}, ",
                    "\"rate_limited\": {}}},\n"
                ),
                w.jobs,
                w.tenants,
                w.wall.as_secs_f64() * 1e3,
                w.jobs_per_sec,
                w.p50.as_secs_f64() * 1e3,
                w.p95.as_secs_f64() * 1e3,
                w.inproc_jobs_per_sec,
                w.inproc_p50.as_secs_f64() * 1e3,
                w.inproc_p95.as_secs_f64() * 1e3,
                w.identical,
                w.shed,
                w.rate_limited
            )
        })
        .unwrap_or_default();
    // Per-phase engine totals accumulated over the whole replay (zeros
    // unless CLIQUE_OBS enabled the phase timers).
    let m = obs::metrics();
    let (sr, sc, se) = m.engine_seq.totals();
    let (pr, pc, pe) = m.engine_sharded.totals();
    let obs_json = format!(
        concat!(
            "  \"obs\": {{\"level\": \"{}\", ",
            "\"engine_seq\": {{\"rounds\": {}, \"compute_ms\": {:.3}, \"exchange_ms\": {:.3}}}, ",
            "\"engine_sharded\": {{\"rounds\": {}, \"compute_ms\": {:.3}, \"exchange_ms\": {:.3}}}}},"
        ),
        obs::level().name(),
        sr,
        sc as f64 / 1e6,
        se as f64 / 1e6,
        pr,
        pc as f64 / 1e6,
        pe as f64 / 1e6,
    );
    let json = format!(
        "{{\n  \"experiment\": \"service_loadgen\",\n  \"scenarios\": [{}],\n  \"available_workers\": {},\n{}\n{}\n{}{}{}{}\n  \"results\": [\n{}\n  ]\n}}\n",
        names.join(", "),
        runtime::available_shards(),
        mix_json,
        overhead_json,
        depth_json,
        chaos_json,
        wire_json,
        obs_json,
        rows_json.join(",\n")
    );
    match std::fs::write("BENCH_service.json", &json) {
        Ok(()) => println!("\nwrote BENCH_service.json"),
        Err(e) => obs::warn(
            obs::WarnKind::BenchWrite,
            format_args!("could not write BENCH_service.json: {e}"),
        ),
    }
}

/// The worker counts the trajectory tracks: 1 and the machine default
/// (`CLIQUE_SHARDS` / CPU count), deduplicated.
pub fn trajectory_worker_counts() -> Vec<usize> {
    let mut counts = vec![1usize];
    let auto = runtime::available_shards();
    if auto != 1 {
        counts.push(auto);
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_replay_is_deterministic_and_hits_the_cache() {
        let scenarios = small_scenarios();
        let rows = replay(&[1, 2], &scenarios);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.hit_rate > 0.0, "repeated specs must produce cache hits");
            assert!(r.jobs_per_sec > 0.0);
            assert!(r.p50 <= r.p95);
            assert!(r.ttfr > Duration::ZERO && r.ttfr <= r.wall);
            // the priority-mix scenario plants exactly two deterministic
            // zero-budget misses among its three deadline-carrying jobs
            assert!(
                (r.deadline_miss_rate - 2.0 / 3.0).abs() < 1e-9,
                "expected 2 misses of 3 deadline jobs, got rate {}",
                r.deadline_miss_rate
            );
        }
    }

    #[test]
    fn sched_depth_measures_both_structures_at_every_depth() {
        let rows = sched_depth(&[300, 600]);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.new_pops_per_sec > 0.0, "two-tier queue must pop at depth {}", r.depth);
            assert!(r.old_pops_per_sec > 0.0, "linear scan must pop at depth {}", r.depth);
            assert!(r.speedup > 0.0);
        }
        // the ratio claim itself is asserted by loadgen --depth at real
        // depths; tiny debug-build fills are too noisy to pin here
    }

    #[test]
    fn chaos_sweep_heals_every_answer_and_counts_faults() {
        let c = chaos_sweep();
        assert!(c.jobs > 0 && c.baseline_jobs_per_sec > 0.0);
        assert_eq!(c.rows.len(), 3);
        for r in &c.rows {
            // answer equality vs the baseline is asserted inside the sweep
            // for every job that completed; here we pin that faults actually
            // landed and healed
            assert!(r.dropped + r.corrupted > 0, "plan {} never tripped", r.spec);
            assert!(r.retries > 0, "drops must force re-deliveries ({})", r.spec);
            assert!(r.penalty_rounds > 0, "retries must charge backoff rounds ({})", r.spec);
        }
        // At the lighter rates eight attempts make a lost message
        // astronomically unlikely, so every job must self-heal to
        // completion. The heavy row is allowed to shed jobs — but only
        // through the typed exhaustion error, which the sweep enforces.
        assert_eq!(c.rows[0].completed, c.jobs, "light plan must complete every job");
        assert_eq!(c.rows[1].completed, c.jobs, "medium plan must complete every job");
        assert!(c.rows[2].completed > 0, "even the heavy plan must land some answers");
        // heavier plans trip more
        assert!(c.rows[2].dropped > c.rows[0].dropped);
        assert!(c.rows[2].crashed > 0, "the heavy plan carries a crash rate");
    }

    #[test]
    fn percentiles_pick_sane_elements() {
        let ms = |x| Duration::from_millis(x);
        let sorted = vec![ms(1), ms(2), ms(3), ms(4), ms(100)];
        assert_eq!(percentile(&sorted, 0.5), ms(3));
        assert_eq!(percentile(&sorted, 0.95), ms(100));
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
    }
}
