//! Shared helpers for the experiment harness and Criterion benches.

pub mod svc;
pub mod trc;

use congest::engine::{Engine, EngineSelect};
use congest::graph::{Graph, VertexId};
use congest::network::{Outbox, Protocol, Word};

/// Least-squares slope of `log(y)` against `log(x)` — the fitted exponent
/// reported by the scaling experiments.
pub fn fitted_exponent(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    if points.len() < 2 {
        return f64::NAN;
    }
    let lx: Vec<f64> = points.iter().map(|&(x, _)| x.ln()).collect();
    let ly: Vec<f64> = points.iter().map(|&(_, y)| y.max(1.0).ln()).collect();
    let mx = lx.iter().sum::<f64>() / n;
    let my = ly.iter().sum::<f64>() / n;
    let num: f64 = lx.iter().zip(&ly).map(|(a, b)| (a - mx) * (b - my)).sum();
    let den: f64 = lx.iter().map(|a| (a - mx) * (a - mx)).sum();
    num / den
}

/// The dense workload of the scaling experiments (the lower-bound-hard
/// instances for clique listing are dense graphs).
pub fn dense_er(n: usize, seed: u64) -> Graph {
    graphs::erdos_renyi(n, 0.5, seed)
}

/// The engine-throughput workload: a sparse near-regular graph that can be
/// generated in `O(n·d)` (the `G(n, p)` generator is `O(n²)` and would
/// dominate the harness at `n = 50k`).
pub fn throughput_graph(n: usize) -> Graph {
    graphs::random_regular(n, 8, 0xbeef)
}

/// The raw-throughput protocol: every vertex sends a mixed word to all its
/// neighbors each round and xor-folds its inbox. It never finishes, so an
/// engine steps it exactly as many rounds as asked — a pure measurement of
/// round-machinery cost (state stepping, bandwidth accounting, mailbox
/// exchange, inbox merge).
pub struct Heartbeat {
    me: VertexId,
    acc: u64,
}

impl Protocol for Heartbeat {
    fn on_round(&mut self, round: u64, inbox: &[(VertexId, Word)], out: &mut Outbox, g: &Graph) {
        for &(_, w) in inbox {
            self.acc ^= w;
        }
        let word =
            self.acc.wrapping_add(round).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ self.me as u64;
        for &v in g.neighbors(self.me) {
            out.send(v, word);
        }
    }

    fn done(&self) -> bool {
        false
    }
}

/// Steps the [`Heartbeat`] protocol exactly `rounds` rounds on the engine
/// `sel` selects and returns `(messages delivered, state checksum)`. The
/// checksum is engine-independent (the parity guarantee) and keeps the
/// optimizer honest.
pub fn engine_round_checksum<S: EngineSelect>(sel: &S, g: &Graph, rounds: u64) -> (u64, u64) {
    let states: Vec<Heartbeat> =
        (0..g.n() as VertexId).map(|me| Heartbeat { me, acc: me as u64 }).collect();
    let mut engine = sel.build(g, states, 1);
    for _ in 0..rounds {
        engine.step();
    }
    let messages = engine.messages();
    let checksum = engine.into_states().into_iter().fold(0u64, |h, s| h.rotate_left(7) ^ s.acc);
    (messages, checksum)
}

/// The sparse-mix hot-path protocol: a rotating 1-in-16 slice of vertices
/// speaks each round while everyone else only folds its inbox. Together
/// with [`Heartbeat`] (every vertex speaks) it brackets the per-round cost
/// between "engine machinery dominated" and "message volume dominated".
pub struct SparseBeat {
    me: VertexId,
    acc: u64,
}

impl Protocol for SparseBeat {
    fn on_round(&mut self, round: u64, inbox: &[(VertexId, Word)], out: &mut Outbox, g: &Graph) {
        for &(_, w) in inbox {
            self.acc ^= w;
        }
        if (self.me as u64 + round).is_multiple_of(16) {
            let word = self.acc.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ round;
            for &v in g.neighbors(self.me) {
                out.send(v, word);
            }
        }
    }

    fn done(&self) -> bool {
        false
    }
}

/// [`engine_round_checksum`] for the [`SparseBeat`] workload.
pub fn sparse_round_checksum<S: EngineSelect>(sel: &S, g: &Graph, rounds: u64) -> (u64, u64) {
    let states: Vec<SparseBeat> =
        (0..g.n() as VertexId).map(|me| SparseBeat { me, acc: me as u64 }).collect();
    let mut engine = sel.build(g, states, 1);
    for _ in 0..rounds {
        engine.step();
    }
    let messages = engine.messages();
    let checksum = engine.into_states().into_iter().fold(0u64, |h, s| h.rotate_left(7) ^ s.acc);
    (messages, checksum)
}

/// A markdown-ish table printer for the experiment harness.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Adds a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Renders the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (w, c) in widths.iter_mut().zip(r) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::from("| ");
            for (c, w) in cells.iter().zip(&widths) {
                s.push_str(&format!("{c:>w$} | ", w = w));
            }
            println!("{s}");
        };
        line(&self.headers);
        let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        line(&sep);
        for r in &self.rows {
            line(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_of_power_law_is_recovered() {
        let pts: Vec<(f64, f64)> =
            (1..6).map(|i| (i as f64 * 100.0, (i as f64 * 100.0).powf(0.33) * 7.0)).collect();
        let e = fitted_exponent(&pts);
        assert!((e - 0.33).abs() < 0.01, "e = {e}");
    }

    #[test]
    fn table_renders_without_panic() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print();
    }

    #[test]
    fn heartbeat_checksum_is_engine_independent() {
        let g = throughput_graph(200);
        let seq = engine_round_checksum(&congest::Sequential, &g, 6);
        let par = engine_round_checksum(&runtime::Sharded::new(4), &g, 6);
        assert_eq!(seq, par);
        // every vertex sends deg messages per round
        assert_eq!(seq.0, 6 * 2 * g.m() as u64);
    }

    #[test]
    fn sparse_checksum_is_engine_independent_and_actually_sparse() {
        let g = throughput_graph(200);
        let seq = sparse_round_checksum(&congest::Sequential, &g, 6);
        let par = sparse_round_checksum(&runtime::Sharded::new(4), &g, 6);
        assert_eq!(seq, par);
        // far fewer messages than the dense heartbeat, but not zero
        assert!(seq.0 > 0 && seq.0 < 6 * 2 * g.m() as u64 / 4, "messages = {}", seq.0);
    }
}
