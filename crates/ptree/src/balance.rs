//! Cluster load-balancing tools: Lemma 19 (amplifier-chain broadcast),
//! Lemma 20 / Algorithm 1 (degree-proportional message assignment) and
//! Lemma 27 (gather-and-double broadcast for `K_p` clusters).

use congest::cluster::CommunicationCluster;
use congest::graph::VertexId;
use congest::metrics::CostReport;
use congest::routing::{route_triples, Packet};
use ppstream::{simulate, Budgets, Emitter, InstanceInput, MainAction, PartialPass, Token};

/// Lemma 19: makes `O(k^{2/3})` messages (each held by one vertex, at most
/// `O(k^{1/3})` per holder) known to **all** of `V⁻`, in `k^{1/3}·n^{o(1)}`
/// rounds, using one amplifier chain per message.
///
/// `items[j] = (holder, words)` — the local vertex currently holding
/// message `j` and its length in words. Returns the measured cost.
pub fn amplifier_broadcast(
    cluster: &CommunicationCluster,
    items: &[(VertexId, usize)],
    bandwidth: usize,
) -> CostReport {
    let k = cluster.k();
    if k == 0 || items.is_empty() {
        return CostReport::zero();
    }
    let v_minus = cluster.v_minus();
    // chain size y = ceil(k / k^{2/3}) = ceil(k^{1/3})
    let y = ((k as f64).powf(1.0 / 3.0).ceil() as usize).clamp(1, k);
    let block = k.div_ceil(y);
    // Phase 1: each holder sends its message to the y members of its
    // amplifier chain (round-robin assignment).
    let mut phase1 = Vec::new();
    for (j, &(holder, words)) in items.iter().enumerate() {
        for i in 0..y {
            let member = v_minus[(j * y + i) % k];
            if member != holder {
                for w in 0..words {
                    phase1.push((holder, member, w as u64));
                }
            }
        }
    }
    let r1 = route_triples(cluster.graph(), phase1, bandwidth);
    // Phase 2: each chain member forwards the message to its block of V⁻.
    let mut phase2 = Vec::new();
    for (j, &(_, words)) in items.iter().enumerate() {
        for i in 0..y {
            let member = v_minus[(j * y + i) % k];
            for t in 0..block {
                let target_rank = i * block + t;
                if target_rank >= k {
                    break;
                }
                let target = v_minus[target_rank];
                if target != member {
                    for w in 0..words {
                        phase2.push((member, target, w as u64));
                    }
                }
            }
        }
    }
    let r2 = route_triples(cluster.graph(), phase2, bandwidth);
    r1.report.named("amplifier-phase1").then(&r2.report.named("amplifier-phase2"))
}

/// Lemma 27: makes `O(n)` messages, each held by one `V⁻` vertex, known to
/// all of `V⁻` in `n^{1/2+o(1)}` rounds.
///
/// Three measured phases, each `Θ(|M|/δ)` rounds on a `(φ, δ)`-cluster:
/// gather all messages at the lowest-rank vertex, scatter them round-robin
/// so every `V⁻` member holds an `|M|/k` share, then an all-to-all in
/// which each member ships its share to everyone. (The paper phrases this
/// as `O(log k)` doubling steps of `Θ(|M|/δ)` rounds each; the
/// gather/scatter/all-to-all realization has the same cost shape with
/// better constants on the measured router, because shares travel on
/// vertex-disjoint paths.)
pub fn gather_and_double_broadcast(
    cluster: &CommunicationCluster,
    items: &[(VertexId, usize)],
    bandwidth: usize,
) -> CostReport {
    let k = cluster.k();
    if k == 0 || items.is_empty() {
        return CostReport::zero();
    }
    let v_minus = cluster.v_minus();
    let hub = v_minus[0];
    // gather
    let mut gather = Vec::new();
    let mut total_words = 0usize;
    for &(holder, words) in items {
        total_words += words;
        if holder != hub {
            for w in 0..words {
                gather.push((holder, hub, w as u64));
            }
        }
    }
    let mut report =
        route_triples(cluster.graph(), gather, bandwidth).report.named("broadcast-gather");
    // scatter: message i to the member of rank i mod k
    let mut scatter = Vec::new();
    for w in 0..total_words {
        let to = v_minus[w % k];
        if to != hub {
            scatter.push((hub, to, w as u64));
        }
    }
    report.absorb(&route_triples(cluster.graph(), scatter, bandwidth).report);
    // all-to-all: each member ships its share to every other member
    let mut exchange = Vec::new();
    for w in 0..total_words {
        let from = v_minus[w % k];
        for &to in v_minus {
            if to != from {
                exchange.push((from, to, w as u64));
            }
        }
    }
    report.absorb(&route_triples(cluster.graph(), exchange, bandwidth).report);
    report.named("broadcast-all")
}

/// The Algorithm 1 partial-pass algorithm of Lemma 20: reads
/// `(rank, deg_C(v))` records in rank order and allocates each `V*` vertex
/// an interval of `2⌈M·deg_C(v)/m⌉` message numbers; low-degree vertices
/// (below `μ/2`) receive the empty interval.
#[derive(Debug)]
pub struct DegreeAllocator {
    /// total messages to allocate
    m_total: u64,
    /// total communication degree `m = |E(V⁻, V_C)|`
    comm_total: u64,
    /// half of the average communication degree
    half_mu_num: u64, // numerator: compare 2·k·deg >= comm_total <=> deg >= mu/2
    k: u64,
    leaf: u64,
}

impl DegreeAllocator {
    /// Creates the allocator for `m_total` messages on a cluster with `k`
    /// `V⁻` members and total communication degree `comm_total`.
    pub fn new(m_total: u64, comm_total: u64, k: u64) -> Self {
        DegreeAllocator { m_total, comm_total, half_mu_num: comm_total, k, leaf: 0 }
    }

    /// Budgets: `N_in = N_out = k`, `B_aux = 0`, `B_write = 1`,
    /// `T_max = 1` (each vertex holds its own degree token).
    pub fn budgets(k: usize) -> Budgets {
        Budgets { n_in: k, n_out: k + 1, b_aux: 0, b_write: 2, state_words: 6 }
    }

    fn pack(rank: u64, start: u64, len: u64) -> Token {
        (rank << 44) | (start << 22) | len
    }

    /// Decodes an output token into `(rank, start, len)`.
    pub fn unpack(token: Token) -> (u64, u64, u64) {
        (token >> 44, (token >> 22) & 0x3f_ffff, token & 0x3f_ffff)
    }
}

impl PartialPass for DegreeAllocator {
    fn on_main(&mut self, token: &[Token], out: &mut Emitter) -> MainAction {
        let (rank, deg) = (token[0], token[1]);
        // deg < mu/2  <=>  2·k·deg < comm_total
        if 2 * self.k * deg < self.half_mu_num {
            out.write(Self::pack(rank, 0, 0));
        } else {
            // l = 2·ceil(M·deg / m)
            let l = 2 * (self.m_total * deg).div_ceil(self.comm_total.max(1));
            out.write(Self::pack(rank, self.leaf, l));
            self.leaf += l;
        }
        MainAction::Continue
    }

    fn on_aux(&mut self, _token: &[Token], _out: &mut Emitter) {
        unreachable!("Algorithm 1 has B_aux = 0");
    }

    fn finish(&mut self, _out: &mut Emitter) {}
}

/// Outcome of the Lemma 20 redistribution.
#[derive(Debug, Clone)]
pub struct BalancedAssignment {
    /// `owner_of[j]` = the `V*` vertex (local id) that learns message `j`.
    pub owner_of: Vec<VertexId>,
    /// Measured cost of the allocation run plus the redistribution.
    pub report: CostReport,
}

/// Lemma 20: redistributes `producers.len()` messages (message `j`
/// currently held by `producers[j]`, each `message_words` long) so that
/// every `v ∈ V*` learns `O(deg_C(v)/μ)` of them. Runs Algorithm 1 through
/// the Theorem 11 simulation with chain length `lambda`, then performs the
/// request/response redistribution with measured routing.
pub fn balance_by_degree(
    cluster: &CommunicationCluster,
    producers: &[VertexId],
    message_words: usize,
    lambda: usize,
    bandwidth: usize,
) -> BalancedAssignment {
    let k = cluster.k();
    assert!(k > 0, "cluster has empty V⁻");
    let v_minus = cluster.v_minus();
    let m_total = producers.len() as u64;
    if m_total == 0 {
        return BalancedAssignment { owner_of: Vec::new(), report: CostReport::zero() };
    }
    let comm_total: u64 = v_minus.iter().map(|&v| cluster.comm_degree(v) as u64).sum();

    // Step 1: home the messages: message j goes to rank j / c, c = ceil(M/k).
    let c = (m_total as usize).div_ceil(k);
    let home = |j: usize| v_minus[(j / c).min(k - 1)];
    let mut homing = Vec::new();
    for (j, &p) in producers.iter().enumerate() {
        let h = home(j);
        if p != h {
            for w in 0..message_words {
                homing.push((p, h, w as u64));
            }
        }
    }
    let homing_cost = route_triples(cluster.graph(), homing, bandwidth).report.named("homing");

    // Step 2: run Algorithm 1 through the simulation.
    let mut allocator = DegreeAllocator::new(m_total, comm_total, k as u64);
    let inputs: Vec<Vec<ppstream::Chunk>> = (0..k)
        .map(|r| {
            vec![ppstream::Chunk {
                main: vec![r as Token, cluster.comm_degree(v_minus[r]) as Token],
                aux: vec![],
            }]
        })
        .collect();
    let outcome = simulate(
        cluster,
        vec![InstanceInput { algo: &mut allocator, budgets: DegreeAllocator::budgets(k), inputs }],
        lambda,
        bandwidth,
    )
    .expect("Algorithm 1 respects its budgets");

    // Step 3: decode allocations; route each allocation token to its rank.
    let mut owner_of: Vec<Option<VertexId>> = vec![None; m_total as usize];
    let mut deliver_interval = Vec::new();
    for &(producer, token) in &outcome.outputs[0] {
        let (rank, start, len) = DegreeAllocator::unpack(token);
        let target = v_minus[rank as usize];
        if producer != target {
            deliver_interval.push((producer, target, token));
        }
        for j in start..(start + len).min(m_total) {
            owner_of[j as usize] = Some(target);
        }
    }
    let deliver_cost =
        route_triples(cluster.graph(), deliver_interval, bandwidth).report.named("intervals");
    // leftover messages (allocation rounding on tiny clusters): round-robin
    // over V*
    let v_star = cluster.v_star();
    let pool = if v_star.is_empty() { v_minus.to_vec() } else { v_star };
    for (j, o) in owner_of.iter_mut().enumerate() {
        if o.is_none() {
            *o = Some(pool[j % pool.len()]);
        }
    }
    let owner_of: Vec<VertexId> = owner_of.into_iter().map(Option::unwrap).collect();

    // Step 4: request/response — each assignee pulls its messages from the
    // home vertices.
    let mut traffic: Vec<Packet> = Vec::new();
    for (j, &owner) in owner_of.iter().enumerate() {
        let h = home(j);
        if owner != h {
            traffic.push(Packet { src: owner, dst: h, payload: j as u64 }); // request
            for w in 0..message_words {
                traffic.push(Packet { src: h, dst: owner, payload: w as u64 }); // response
            }
        }
    }
    let pull_cost =
        congest::routing::route(cluster.graph(), traffic, bandwidth).report.named("pull");

    let report = homing_cost.then(&outcome.report).then(&deliver_cost).then(&pull_cost);
    BalancedAssignment { owner_of, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::graph::Graph;

    fn clique_cluster(n: usize) -> CommunicationCluster {
        let mut e = Vec::new();
        for u in 0..n as VertexId {
            for v in u + 1..n as VertexId {
                e.push((u, v));
            }
        }
        let g = Graph::from_edges(n, &e);
        CommunicationCluster::new(g, (0..n as VertexId).collect(), 1, 0.5)
    }

    #[test]
    fn amplifier_broadcast_costs_scale() {
        let cluster = clique_cluster(27);
        let items: Vec<(VertexId, usize)> = (0..9).map(|j| (j as VertexId, 1)).collect();
        let r = amplifier_broadcast(&cluster, &items, 1);
        assert!(r.rounds > 0);
        // every vertex must receive all 9 messages: >= 9·27 deliveries
        assert!(r.messages >= 9 * 26, "messages = {}", r.messages);
    }

    #[test]
    fn gather_and_double_touches_everyone() {
        let cluster = clique_cluster(16);
        let items: Vec<(VertexId, usize)> = (0..4).map(|j| (j as VertexId, 2)).collect();
        let r = gather_and_double_broadcast(&cluster, &items, 1);
        // doubling: log2(16) = 4 stages, each shipping 8 words
        assert!(r.messages >= 8 * 15, "messages = {}", r.messages);
    }

    #[test]
    fn degree_allocator_covers_all_messages() {
        // regular cluster: every vertex has the same degree -> everyone in V*
        let cluster = clique_cluster(12);
        let producers: Vec<VertexId> = (0..24).map(|j| (j % 12) as VertexId).collect();
        let out = balance_by_degree(&cluster, &producers, 2, 3, 1);
        assert_eq!(out.owner_of.len(), 24);
        // regular cluster: allocation ~ 2·ceil(24/12)·... each vertex gets
        // O(M·deg/m) = O(2) messages; no vertex should be assigned more
        // than ~6
        let mut counts = std::collections::HashMap::new();
        for &o in &out.owner_of {
            *counts.entry(o).or_insert(0usize) += 1;
        }
        for (&v, &c) in &counts {
            assert!(c <= 8, "vertex {v} got {c} messages");
        }
    }

    #[test]
    fn low_degree_vertices_get_nothing() {
        // star-plus-clique: pendant vertices have degree 1, below mu/2
        let mut e = Vec::new();
        for u in 0..8u32 {
            for v in u + 1..8 {
                e.push((u, v));
            }
        }
        e.push((0, 8));
        e.push((1, 9));
        let g = Graph::from_edges(10, &e);
        let cluster = CommunicationCluster::new(g, (0..10).collect(), 1, 0.3);
        let producers: Vec<VertexId> = (0..10).map(|j| (j % 10) as VertexId).collect();
        let out = balance_by_degree(&cluster, &producers, 1, 2, 1);
        for &o in &out.owner_of {
            assert!(o < 8, "pendant vertex {o} was assigned a message");
        }
    }

    #[test]
    fn allocator_packing_round_trips() {
        let t = DegreeAllocator::pack(1023, 4321, 99);
        assert_eq!(DegreeAllocator::unpack(t), (1023, 4321, 99));
    }
}
