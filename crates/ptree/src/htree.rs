//! `H`-partition trees (Definition 14) and the Lemma 17 layer-construction
//! streaming algorithm.
//!
//! An `H`-partition tree over a subgraph `G' = (V', E')` strengthens the
//! plain `p`-partition tree with three balance constraints, for constants
//! `c1 = 9, c2 = 36, c3 = 4` (the values proven sufficient in Lemma 17):
//!
//! - `DEG`:   `|E(U, V')| ≤ c1·m̃/x` for every part `U`;
//! - `UP_DEG`: `Σ_{W ∈ anc(U)∖{U}} |E(U, W)| ≤ c2·d_i·m̃/x² + c3·p·k/x`;
//! - `SIZE`:  `|U| ≤ c3·k/x`;
//!
//! where `k = |V'|`, `x = k^{1/p}`, `m̃ = max(m, kx)` and `d_i` is the
//! number of `H`-edges from `z_i` to earlier vertices (`d_i = i` for
//! cliques).
//!
//! [`LayerBuilder`] is the Lemma 17 partial-pass streaming algorithm: a
//! pure counter scan over the vertices in rank order (no `GET-AUX`;
//! `B_aux = 0`) that greedily closes a part whenever a counter would
//! overflow, emitting interval endpoints.

use congest::graph::{Graph, VertexId};
use ppstream::{Budgets, Emitter, MainAction, PartialPass, Token};

use crate::tree::{PartitionTree, PathCode};

/// Constants `(c1, c2, c3)` of Definition 14, fixed per Lemma 17.
pub const C1: u64 = 9;
/// See [`C1`].
pub const C2: u64 = 36;
/// See [`C1`].
pub const C3: u64 = 4;

/// Shape parameters of an `H`-partition tree over a rank graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HTreeParams {
    /// Number of layers `p` (= clique size for `K_p`).
    pub p: usize,
    /// Ground-set size `k = |V'|`.
    pub k: u32,
    /// Branching bound `x = ⌈k^{1/p}⌉`.
    pub x: u64,
    /// Number of edges `m = |E'|` of the rank graph.
    pub m: u64,
}

impl HTreeParams {
    /// Derives parameters from the rank graph for `p` layers.
    pub fn for_graph(rank_graph: &Graph, p: usize) -> Self {
        let k = rank_graph.n() as u32;
        // branching 2·k^{1/p}: a constant-factor widening of Definition 12's
        // x = k^{1/p} that doubles the balance resolution of every layer
        // (see DESIGN.md, ablation A3); still Θ(k^{1/p}).
        let x = (2.0 * (k as f64).powf(1.0 / p as f64)).ceil().max(1.0) as u64;
        HTreeParams { p, k, x, m: rank_graph.m() as u64 }
    }

    /// `m̃ = max(m, k·x)`.
    pub fn m_tilde(&self) -> u64 {
        self.m.max(self.k as u64 * self.x)
    }

    /// `DEG` limit `c1·m̃/x`.
    pub fn deg_limit(&self) -> u64 {
        C1 * self.m_tilde() / self.x
    }

    /// `UP_DEG` limit at level `level` (`d_i = level` for cliques):
    /// `c2·d_i·m̃/x² + c3·p·k/x`.
    pub fn up_deg_limit(&self, level: usize) -> u64 {
        C2 * level as u64 * self.m_tilde() / (self.x * self.x)
            + C3 * self.p as u64 * self.k as u64 / self.x
    }

    /// `SIZE` limit `c3·k/x`.
    pub fn size_limit(&self) -> u64 {
        (C3 * self.k as u64).div_ceil(self.x)
    }
}

/// The Lemma 17 layer builder: a one-pass counter algorithm over the
/// vertices of `V'` in rank order.
///
/// Each main token record carries
/// `[deg_{V'}(v), Σ_{U' ∈ anc} |E(v, U')|]`; the builder accumulates
/// `DEG`/`UP_DEG`/`SIZE` counters and closes the current part (emitting an
/// interval endpoint token) whenever adding a vertex would overflow a
/// limit. `B_aux = 0`: the whole stream is read at main-token granularity.
#[derive(Debug, Clone)]
pub struct LayerBuilder {
    deg_limit: u64,
    up_limit: u64,
    size_limit: u64,
    deg: u64,
    up: u64,
    size: u64,
    start: u32,
    idx: u32,
    parts_emitted: usize,
    // balance machinery: tight targets plus the remaining totals, used to
    // close parts early whenever the mandatory-close budget provably keeps
    // the part count within x (see `may_close_optionally`)
    x: u64,
    level_d: u64,
    m_tilde: u64,
    k: u64,
    rem_deg: u64,
    rem_up: u64,
    rem_size: u64,
    target_deg: u64,
    target_up: u64,
    target_size: u64,
}

impl LayerBuilder {
    /// Creates a builder for one node's partition at `level` (the level of
    /// the parts being created: root partition parts live at level 0).
    ///
    /// `totals = (Σ deg, Σ up_deg)` over the whole stream — globally
    /// aggregable in `Õ(1)` rounds over the cluster's spanning tree, as in
    /// Lemma 20's preamble. They enable *optional* early part closes at
    /// volume targets `2·total/x`, which keep the partition balanced
    /// without ever exceeding the `≤ x` part bound: an optional close is
    /// taken only when the paper's mandatory-close count bound on the
    /// *remaining* stream still fits the budget.
    pub fn new(params: &HTreeParams, level: usize, totals: (u64, u64)) -> Self {
        let x = params.x.max(1);
        LayerBuilder {
            deg_limit: params.deg_limit(),
            up_limit: params.up_deg_limit(level),
            size_limit: params.size_limit(),
            deg: 0,
            up: 0,
            size: 0,
            start: 0,
            idx: 0,
            parts_emitted: 0,
            x,
            level_d: level as u64,
            m_tilde: params.m_tilde(),
            k: params.k as u64,
            rem_deg: totals.0,
            rem_up: totals.1,
            rem_size: params.k as u64,
            target_deg: (3 * totals.0 / (2 * x)).max(1),
            target_up: (3 * totals.1 / (2 * x)).max(1),
            target_size: (3 * params.k as u64 / (2 * x)).max(1),
        }
    }

    /// Upper bound on the number of *mandatory* closes the remaining stream
    /// can still force (the per-counter volume arguments of Lemma 17,
    /// applied to the remaining totals), plus slack for the open part.
    fn mandatory_bound(&self) -> u64 {
        let deg_closes = (2 * self.rem_deg * self.x).div_ceil((C1 - 1) * self.m_tilde);
        let up_closes = if self.level_d > 0 {
            (self.rem_up * self.x * self.x).div_ceil(C2 * self.level_d * self.m_tilde)
        } else {
            0
        };
        let size_closes = (2 * self.rem_size * self.x).div_ceil(C3 * self.k);
        // +1 for the final part emitted by `finish`
        deg_closes + up_closes + size_closes + 1
    }

    fn may_close_optionally(&self) -> bool {
        let over_target = self.deg >= self.target_deg
            || self.up >= self.target_up
            || self.size >= self.target_size;
        over_target && self.parts_emitted as u64 + 1 + self.mandatory_bound() <= self.x
    }

    /// Budgets of this algorithm per Lemma 17:
    /// `N_in = k`, `N_out = x`, `B_aux = 0`, `B_write = N_out`.
    pub fn budgets(params: &HTreeParams) -> Budgets {
        Budgets {
            n_in: params.k as usize,
            n_out: 2 * params.x as usize + 2,
            b_aux: 0,
            b_write: 2 * params.x as usize + 2,
            state_words: 8,
        }
    }

    fn would_overflow(&self, deg: u64, up: u64) -> bool {
        self.deg + deg > self.deg_limit
            || self.up + up > self.up_limit
            || self.size + 1 > self.size_limit
    }

    fn close_part(&mut self, out: &mut Emitter) {
        out.write(((self.start as u64) << 32) | self.idx as u64);
        self.parts_emitted += 1;
        self.start = self.idx;
        self.deg = 0;
        self.up = 0;
        self.size = 0;
    }
}

impl PartialPass for LayerBuilder {
    fn on_main(&mut self, token: &[Token], out: &mut Emitter) -> MainAction {
        let (deg, up) = (token[0], token[1]);
        if self.size > 0 && (self.would_overflow(deg, up) || self.may_close_optionally()) {
            self.close_part(out);
        }
        // a fresh part always accepts a single vertex (see Lemma 17)
        self.deg += deg;
        self.up += up;
        self.size += 1;
        self.idx += 1;
        self.rem_deg = self.rem_deg.saturating_sub(deg);
        self.rem_up = self.rem_up.saturating_sub(up);
        self.rem_size = self.rem_size.saturating_sub(1);
        MainAction::Continue
    }

    fn on_aux(&mut self, _token: &[Token], _out: &mut Emitter) {
        unreachable!("Lemma 17 builder has B_aux = 0");
    }

    fn finish(&mut self, out: &mut Emitter) {
        if self.size > 0 || self.parts_emitted == 0 {
            self.close_part(out);
        }
    }
}

/// Computes the main-token record of vertex rank `r` for building the
/// children of the node at `path`: `[deg_{V'}(r), Σ_{U'∈anc(path)} |E(r, U')|]`.
///
/// `rank_graph` is the graph on ranks `0..k` (the cluster graph restricted
/// to `V⁻`, relabelled by rank). The ancestors of the node are the parts
/// selected by `path` at each prior level.
pub fn vertex_record(
    rank_graph: &Graph,
    tree: &PartitionTree,
    path: PathCode,
    r: u32,
) -> Vec<Token> {
    let deg = rank_graph.degree(r as VertexId) as u64;
    let mut up = 0u64;
    for (i, &l) in path.elements().iter().enumerate() {
        let node = tree.node(path.prefix(i)).expect("ancestor node missing");
        let (s, e) = node.interval(l);
        up += rank_graph.neighbors(r as VertexId).iter().filter(|&&u| (s..e).contains(&u)).count()
            as u64;
    }
    vec![deg, up]
}

/// A constraint violation found by [`check_htree`].
#[derive(Debug, Clone, PartialEq)]
pub enum HTreeViolation {
    /// A node has more than `x` parts.
    TooManyParts { path: PathCode, count: usize, limit: u64 },
    /// `DEG` exceeded.
    Deg { path: PathCode, part: usize, value: u64, limit: u64 },
    /// `UP_DEG` exceeded.
    UpDeg { path: PathCode, part: usize, value: u64, limit: u64 },
    /// `SIZE` exceeded.
    Size { path: PathCode, part: usize, value: u64, limit: u64 },
}

/// Validates all built nodes of `tree` against Definition 14.
///
/// Returns every violation found (empty = valid `H`-partition tree).
pub fn check_htree(
    rank_graph: &Graph,
    tree: &PartitionTree,
    params: &HTreeParams,
) -> Vec<HTreeViolation> {
    let mut violations = Vec::new();
    for level in 0..tree.layers {
        for path in tree.paths_at_level(level) {
            let node = tree.node(path).unwrap();
            if node.part_count() as u64 > params.x {
                violations.push(HTreeViolation::TooManyParts {
                    path,
                    count: node.part_count(),
                    limit: params.x,
                });
            }
            for (j, s, e) in node.parts() {
                // SIZE
                let size = (e - s) as u64;
                if size > params.size_limit() {
                    violations.push(HTreeViolation::Size {
                        path,
                        part: j,
                        value: size,
                        limit: params.size_limit(),
                    });
                }
                // DEG
                let mut deg = 0u64;
                for r in s..e {
                    deg += rank_graph.degree(r as VertexId) as u64;
                }
                if deg > params.deg_limit() {
                    violations.push(HTreeViolation::Deg {
                        path,
                        part: j,
                        value: deg,
                        limit: params.deg_limit(),
                    });
                }
                // UP_DEG (sum over strict ancestors)
                let mut up = 0u64;
                for (i, &l) in path.elements().iter().enumerate() {
                    let anc = tree.node(path.prefix(i)).unwrap();
                    let (as_, ae) = anc.interval(l);
                    for r in s..e {
                        up += rank_graph
                            .neighbors(r as VertexId)
                            .iter()
                            .filter(|&&u| (as_..ae).contains(&u))
                            .count() as u64;
                    }
                }
                let limit = params.up_deg_limit(level);
                if up > limit {
                    violations.push(HTreeViolation::UpDeg { path, part: j, value: up, limit });
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppstream::{run_local, Stream};

    fn rank_clique(k: usize) -> Graph {
        let mut e = Vec::new();
        for u in 0..k as VertexId {
            for v in u + 1..k as VertexId {
                e.push((u, v));
            }
        }
        Graph::from_edges(k, &e)
    }

    fn build_level(
        g: &Graph,
        tree: &PartitionTree,
        path: PathCode,
        params: &HTreeParams,
        level: usize,
    ) -> crate::tree::Partition {
        let records: Vec<Vec<u64>> =
            (0..params.k).map(|r| vertex_record(g, tree, path, r)).collect();
        let totals = (records.iter().map(|r| r[0]).sum(), records.iter().map(|r| r[1]).sum());
        let mut builder = LayerBuilder::new(params, level, totals);
        let stream = Stream::new(
            records.into_iter().map(|main| ppstream::Chunk { main, aux: vec![] }).collect(),
        );
        let (tokens, _) = run_local(&mut builder, &stream, &LayerBuilder::budgets(params)).unwrap();
        crate::tree::Partition::from_interval_tokens(tokens, params.k)
    }

    /// Builds a full K3 tree centrally (the distributed driver lives in
    /// `build_k3`; this test exercises the streaming algorithm itself).
    fn build_full_tree(g: &Graph, p: usize) -> (PartitionTree, HTreeParams) {
        let params = HTreeParams::for_graph(g, p);
        let mut tree = PartitionTree::new(p, vec![params.k; p]);
        tree.set_node(PathCode::root(), build_level(g, &tree, PathCode::root(), &params, 0));
        for level in 1..p {
            for parent in tree.paths_at_level(level - 1) {
                let parent_parts = tree.node(parent).unwrap().part_count();
                for j in 0..parent_parts {
                    let path = parent.child(j);
                    let part = build_level(g, &tree, path, &params, level);
                    tree.set_node(path, part);
                }
            }
        }
        (tree, params)
    }

    #[test]
    fn built_tree_satisfies_constraints_on_clique() {
        let g = rank_clique(27);
        let (tree, params) = build_full_tree(&g, 3);
        let violations = check_htree(&g, &tree, &params);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn built_tree_satisfies_constraints_on_sparse_graph() {
        let g = Graph::from_edges(30, &(0..29u32).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let (tree, params) = build_full_tree(&g, 3);
        let violations = check_htree(&g, &tree, &params);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn every_triangle_is_covered_by_some_leaf() {
        let g = rank_clique(16);
        let (tree, _) = build_full_tree(&g, 3);
        // all triangles of the clique: check Theorem 13 coverage by trace
        for a in 0..16u32 {
            for b in 0..16u32 {
                for c in 0..16u32 {
                    if a == b || b == c || a == c {
                        continue;
                    }
                    let traced = tree.trace(&[a, b, c]);
                    assert!(traced.is_some(), "trace failed for ({a},{b},{c})");
                    let (path, part) = traced.unwrap();
                    let anc = tree.ancestors(path, part).unwrap();
                    // each vertex must be inside its level's ancestor part
                    let ranks = [a, b, c];
                    for (i, (lvl, (s, e))) in anc.iter().enumerate() {
                        assert_eq!(*lvl, i);
                        assert!((*s..*e).contains(&ranks[i]));
                    }
                }
            }
        }
    }

    #[test]
    fn part_count_stays_within_x() {
        for seed in 0..3u64 {
            let g = {
                // deterministic sparse-ish graph on 64 ranks
                let mut e = Vec::new();
                let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
                for u in 0..64u32 {
                    for v in u + 1..64 {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        if state >> 60 < 3 {
                            e.push((u, v));
                        }
                    }
                }
                Graph::from_edges(64, &e)
            };
            let (tree, params) = build_full_tree(&g, 3);
            for level in 0..3 {
                for path in tree.paths_at_level(level) {
                    let count = tree.node(path).unwrap().part_count() as u64;
                    assert!(count <= params.x, "seed {seed}: {count} parts > x = {}", params.x);
                }
            }
        }
    }

    #[test]
    fn builder_emits_cover_of_ground_set() {
        let g = rank_clique(10);
        let params = HTreeParams::for_graph(&g, 3);
        let tree = PartitionTree::new(3, vec![10; 3]);
        let part = build_level(&g, &tree, PathCode::root(), &params, 0);
        assert_eq!(*part.breaks().first().unwrap(), 0);
        assert_eq!(*part.breaks().last().unwrap(), 10);
    }

    #[test]
    fn checker_flags_oversized_part() {
        let g = rank_clique(27);
        let params = HTreeParams::for_graph(&g, 3);
        let mut tree = PartitionTree::new(3, vec![27; 3]);
        // a single giant part violates SIZE (27 > c3·k/x = 4*27/3 = 36? no —
        // size_limit = 36 here, so force a smaller limit via larger x)
        tree.set_node(PathCode::root(), crate::tree::Partition::trivial(27));
        let tight = HTreeParams { x: 27, ..params };
        let violations = check_htree(&g, &tree, &tight);
        assert!(violations
            .iter()
            .any(|v| matches!(v, HTreeViolation::Size { .. })
                || matches!(v, HTreeViolation::Deg { .. })));
    }
}
