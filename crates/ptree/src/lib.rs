//! Partition trees for distributed clique listing (Section 4 of the
//! reproduced paper).
//!
//! Two families of trees are provided:
//!
//! - [`htree`]: `H`-partition trees (Definition 14) for `K_3` listing —
//!   `p`-partition trees with the strengthened `DEG`/`UP_DEG`/`SIZE`
//!   balance constraints, built one layer at a time by the counter-based
//!   partial-pass streaming algorithm of Lemma 17.
//! - [`split`]: `(p', p)`-split `K_p`-partition trees over split graphs
//!   (Definitions 21–22) for `p ≥ 4`, built by the `GET-AUX`-using
//!   algorithm of Lemma 29 (Algorithm 2 of the paper).
//!
//! The construction drivers [`build_k3`] (Theorem 16) and [`build_kp`]
//! (Theorems 26/28/31) run these streaming algorithms through the
//! Theorem 11 simulation of the [`ppstream`] crate on a communication
//! cluster, then redistribute the results with the load-balancing tools of
//! [`balance`] (Lemmas 19, 20 and 27). [`tree`] holds the shared
//! interval-partition representation and the Theorem 13/23 coverage
//! traces.

pub mod balance;
pub mod build_k3;
pub mod build_kp;
pub mod htree;
pub mod split;
pub mod tree;

pub use build_k3::{build_k3_tree, K3TreeOutcome};
pub use build_kp::{build_split_tree, SplitTreeOutcome};
pub use htree::{check_htree, HTreeParams, LayerBuilder};
pub use split::{check_split_tree, SplitGraph, SplitLayerBuilder, SplitParams};
pub use tree::{Partition, PartitionTree, PathCode};
