//! The shared partition-tree representation (Definition 12) and the
//! coverage trace of Theorem 13.
//!
//! Every partition produced by the streaming constructions is an *interval
//! partition*: the ground set is `0..k` (vertex ranks) and parts are
//! contiguous rank intervals, so a partition is fully described by its
//! breakpoints — exactly the tokens the streaming algorithms emit.

use ppstream::Token;

/// A partition of `0..k` into consecutive intervals.
///
/// Part `j` is the half-open interval `[breaks[j], breaks[j+1])`.
///
/// # Example
///
/// ```
/// use partition_trees::Partition;
/// let p = Partition::from_breaks(vec![0, 3, 7, 10]);
/// assert_eq!(p.part_count(), 3);
/// assert_eq!(p.part_of(5), 1);
/// assert_eq!(p.interval(2), (7, 10));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    breaks: Vec<u32>,
}

impl Partition {
    /// Builds a partition from its breakpoints.
    ///
    /// # Panics
    ///
    /// Panics if `breaks` has fewer than 2 entries or is not
    /// non-decreasing starting at the ground-set start.
    pub fn from_breaks(breaks: Vec<u32>) -> Self {
        assert!(breaks.len() >= 2, "a partition needs at least one part");
        assert!(breaks.windows(2).all(|w| w[0] <= w[1]), "breaks must be sorted");
        Partition { breaks }
    }

    /// Builds the trivial one-part partition of `0..k`.
    pub fn trivial(k: u32) -> Self {
        Partition { breaks: vec![0, k] }
    }

    /// Decodes a partition from interval tokens `(start << 32) | end`
    /// emitted by the layer builders, sorted by start.
    pub fn from_interval_tokens(mut tokens: Vec<Token>, k: u32) -> Self {
        tokens.sort_unstable();
        let mut breaks = vec![0u32];
        for t in tokens {
            let end = (t & 0xffff_ffff) as u32;
            breaks.push(end.min(k));
        }
        if *breaks.last().unwrap() != k {
            breaks.push(k);
        }
        Partition::from_breaks(breaks)
    }

    /// Number of parts (empty parts included if breakpoints repeat).
    pub fn part_count(&self) -> usize {
        self.breaks.len() - 1
    }

    /// The part containing `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is outside the ground set.
    pub fn part_of(&self, rank: u32) -> usize {
        assert!(rank < *self.breaks.last().unwrap(), "rank out of range");
        match self.breaks.binary_search(&rank) {
            Ok(mut i) => {
                // land on the first part starting at `rank` (skip empties)
                while self.breaks[i + 1] == rank {
                    i += 1;
                }
                i
            }
            Err(i) => i - 1,
        }
    }

    /// The half-open interval `[start, end)` of part `j`.
    pub fn interval(&self, j: usize) -> (u32, u32) {
        (self.breaks[j], self.breaks[j + 1])
    }

    /// Number of ranks in part `j`.
    pub fn part_len(&self, j: usize) -> usize {
        (self.breaks[j + 1] - self.breaks[j]) as usize
    }

    /// Iterates `(part index, start, end)` over non-empty parts.
    pub fn parts(&self) -> impl Iterator<Item = (usize, u32, u32)> + '_ {
        (0..self.part_count())
            .map(move |j| (j, self.breaks[j], self.breaks[j + 1]))
            .filter(|&(_, s, e)| s < e)
    }

    /// The breakpoints.
    pub fn breaks(&self) -> &[u32] {
        &self.breaks
    }

    /// Encodes the partition as interval tokens (inverse of
    /// [`from_interval_tokens`](Self::from_interval_tokens)).
    pub fn to_interval_tokens(&self) -> Vec<Token> {
        (0..self.part_count())
            .map(|j| ((self.breaks[j] as u64) << 32) | self.breaks[j + 1] as u64)
            .collect()
    }
}

/// A path in a partition tree: the sequence `(ℓ_1, …, ℓ_i)` of child
/// indices from the root, encoded compactly.
///
/// Up to 4 path elements of up to 16 bits each (ample for `p ≤ 5` and
/// `x < 65536`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PathCode(u64);

impl PathCode {
    /// The root (empty) path.
    pub fn root() -> Self {
        PathCode(0)
    }

    /// Appends a child index.
    ///
    /// # Panics
    ///
    /// Panics if the path already has 4 elements or `child >= 2^16 - 1`.
    pub fn child(self, child: usize) -> Self {
        let len = self.len();
        assert!(len < 4, "path too deep");
        assert!(child < 0xffff, "child index too large");
        PathCode(self.0 | ((child as u64 + 1) << (16 * len)))
    }

    /// Number of elements.
    pub fn len(self) -> usize {
        (0..4).take_while(|&i| (self.0 >> (16 * i)) & 0xffff != 0).count()
    }

    /// Whether this is the root path.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The elements `(ℓ_1, …, ℓ_i)`.
    pub fn elements(self) -> Vec<usize> {
        (0..self.len()).map(|i| ((self.0 >> (16 * i)) & 0xffff) as usize - 1).collect()
    }

    /// The prefix of length `l`.
    pub fn prefix(self, l: usize) -> Self {
        let mask = if l >= 4 { u64::MAX } else { (1u64 << (16 * l)) - 1 };
        PathCode(self.0 & mask)
    }
}

/// A `p`-layer partition tree (Definition 12): each node carries a
/// partition of the ground set; the `j`-th child of a node is reached by
/// appending `j` to its path.
#[derive(Debug, Clone)]
pub struct PartitionTree {
    /// Number of layers `p` (levels `0..p`).
    pub layers: usize,
    /// Ground-set size of each level's partitions (a level partitions
    /// either `V'` or, for split trees, `V_1`/`V_2`).
    pub ground: Vec<u32>,
    nodes: Vec<std::collections::HashMap<PathCode, Partition>>,
}

impl PartitionTree {
    /// Creates an empty tree with `layers` levels, where level `i`
    /// partitions a ground set of size `ground[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `ground.len() != layers`.
    pub fn new(layers: usize, ground: Vec<u32>) -> Self {
        assert_eq!(ground.len(), layers);
        PartitionTree {
            layers,
            ground,
            nodes: (0..layers).map(|_| std::collections::HashMap::new()).collect(),
        }
    }

    /// Stores the partition of the node at `path` (level = path length).
    ///
    /// # Panics
    ///
    /// Panics if the path is deeper than the tree.
    pub fn set_node(&mut self, path: PathCode, partition: Partition) {
        let level = path.len();
        assert!(level < self.layers, "path deeper than tree");
        self.nodes[level].insert(path, partition);
    }

    /// The partition of the node at `path`, if built.
    pub fn node(&self, path: PathCode) -> Option<&Partition> {
        self.nodes.get(path.len())?.get(&path)
    }

    /// All node paths at `level`, sorted.
    pub fn paths_at_level(&self, level: usize) -> Vec<PathCode> {
        let mut v: Vec<PathCode> = self.nodes[level].keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// The ancestor parts `anc(U_{S,j})` of the part `j` of the node at
    /// `path`: one `(level, interval)` per level along the path, plus the
    /// part itself. See Definition 12.
    ///
    /// Returns `None` if some node along the path is missing.
    pub fn ancestors(&self, path: PathCode, part: usize) -> Option<Vec<(usize, (u32, u32))>> {
        let elems = path.elements();
        let mut out = Vec::with_capacity(elems.len() + 1);
        for (i, &l) in elems.iter().enumerate() {
            let node = self.node(path.prefix(i))?;
            if l >= node.part_count() {
                return None;
            }
            out.push((i, node.interval(l)));
        }
        let node = self.node(path)?;
        if part >= node.part_count() {
            return None;
        }
        out.push((elems.len(), node.interval(part)));
        Some(out)
    }

    /// The Theorem 13 trace: given the ranks of a `p`-vertex instance
    /// (`ranks[i]` is placed at level `i`), returns the leaf `(path, part)`
    /// whose ancestor parts contain the instance.
    ///
    /// Returns `None` if a node on the trace has not been built.
    ///
    /// # Panics
    ///
    /// Panics if `ranks.len() != self.layers`.
    pub fn trace(&self, ranks: &[u32]) -> Option<(PathCode, usize)> {
        assert_eq!(ranks.len(), self.layers, "one rank per layer");
        let mut path = PathCode::root();
        for (i, &r) in ranks.iter().enumerate() {
            let node = self.node(path)?;
            let part = node.part_of(r);
            if i + 1 == self.layers {
                return Some((path, part));
            }
            path = path.child(part);
        }
        unreachable!()
    }

    /// Iterates all `(path, part index)` leaf parts that exist.
    pub fn leaf_parts(&self) -> Vec<(PathCode, usize)> {
        let leaf_level = self.layers - 1;
        let mut out = Vec::new();
        for path in self.paths_at_level(leaf_level) {
            let node = &self.nodes[leaf_level][&path];
            for (j, s, e) in node.parts() {
                let _ = (s, e);
                out.push((path, j));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_basics() {
        let p = Partition::from_breaks(vec![0, 4, 4, 9]);
        assert_eq!(p.part_count(), 3);
        assert_eq!(p.part_of(0), 0);
        assert_eq!(p.part_of(3), 0);
        assert_eq!(p.part_of(4), 2); // part 1 is empty
        assert_eq!(p.part_len(1), 0);
        let nonempty: Vec<_> = p.parts().collect();
        assert_eq!(nonempty, vec![(0, 0, 4), (2, 4, 9)]);
    }

    #[test]
    fn interval_token_round_trip() {
        let p = Partition::from_breaks(vec![0, 2, 5, 10]);
        let toks = p.to_interval_tokens();
        let q = Partition::from_interval_tokens(toks, 10);
        assert_eq!(p, q);
    }

    #[test]
    fn path_code_round_trip() {
        let p = PathCode::root().child(3).child(0).child(77);
        assert_eq!(p.len(), 3);
        assert_eq!(p.elements(), vec![3, 0, 77]);
        assert_eq!(p.prefix(1).elements(), vec![3]);
        assert_eq!(p.prefix(0), PathCode::root());
    }

    #[test]
    fn trace_follows_parts() {
        // 2-layer tree over 0..6: root splits {0..3, 3..6}; children split
        // into singleton-ish intervals.
        let mut t = PartitionTree::new(2, vec![6, 6]);
        t.set_node(PathCode::root(), Partition::from_breaks(vec![0, 3, 6]));
        t.set_node(PathCode::root().child(0), Partition::from_breaks(vec![0, 2, 4, 6]));
        t.set_node(PathCode::root().child(1), Partition::from_breaks(vec![0, 1, 6]));
        // instance with ranks (1, 5): root part of 1 is 0 -> child 0; part
        // of 5 there is 2
        let (path, part) = t.trace(&[1, 5]).unwrap();
        assert_eq!(path, PathCode::root().child(0));
        assert_eq!(part, 2);
        // ancestors: root part 0 = [0,3), leaf part 2 = [4,6)
        let anc = t.ancestors(path, part).unwrap();
        assert_eq!(anc, vec![(0, (0, 3)), (1, (4, 6))]);
    }

    #[test]
    fn missing_node_trace_is_none() {
        let mut t = PartitionTree::new(2, vec![4, 4]);
        t.set_node(PathCode::root(), Partition::from_breaks(vec![0, 2, 4]));
        assert!(t.trace(&[0, 3]).is_none());
    }

    #[test]
    fn leaf_parts_enumerates_nonempty() {
        let mut t = PartitionTree::new(2, vec![4, 4]);
        t.set_node(PathCode::root(), Partition::from_breaks(vec![0, 2, 4]));
        t.set_node(PathCode::root().child(0), Partition::from_breaks(vec![0, 4, 4]));
        t.set_node(PathCode::root().child(1), Partition::from_breaks(vec![0, 1, 4]));
        let leaves = t.leaf_parts();
        assert_eq!(leaves.len(), 3); // one non-empty part + two
    }
}
