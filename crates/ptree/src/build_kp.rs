//! Theorems 26/28/31: distributed construction of `(p', p)`-split
//! `K_p`-partition trees on a `K_p`-compatible cluster.
//!
//! The cluster's `V⁻` members collectively hold the split-graph input: the
//! internal edges `E_1 = E(V⁻, V⁻)`, the boundary edges `E_12 = Ē` (each
//! known to its `V⁻` endpoint) and the imported edges `E_2 = E'`
//! (distributed across `V⁻` by Theorem 31's vertex chain). Each layer of
//! the tree is built by `ζ` parallel instances of the Lemma 29 streaming
//! algorithm (Algorithm 2), simulated via Theorem 11, and broadcast to all
//! of `V⁻` with Lemma 27.

use congest::cluster::CommunicationCluster;
use congest::graph::VertexId;
use congest::metrics::CostReport;
use congest::routing::route_triples;
use ppstream::{simulate, InstanceInput};

use crate::balance::gather_and_double_broadcast;
use crate::split::{split_layer_chunks, SplitGraph, SplitLayerBuilder, SplitParams};
use crate::tree::{Partition, PartitionTree, PathCode};

/// Result of [`build_split_tree`].
#[derive(Debug, Clone)]
pub struct SplitTreeOutcome {
    /// The `p`-layer split tree (levels `< π` partition `V_2`, the rest
    /// `V_1`).
    pub tree: PartitionTree,
    /// Tree shape parameters.
    pub params: SplitParams,
    /// Measured cost of rearrangement, construction and broadcasts.
    pub report: CostReport,
}

/// Theorem 31: cost of rearranging the imported edges `E'` so that each
/// `V⁻` chain member holds the edges whose tails fall in its block of
/// `V_2` (the `K_p`-input-cluster form, Definition 25).
///
/// `e2_holders[i] = (current holder, number of E' edges held)`.
pub fn rearrange_input_cost(
    cluster: &CommunicationCluster,
    e2_holders: &[(VertexId, usize)],
    bandwidth: usize,
) -> CostReport {
    let k = cluster.k();
    if k == 0 || e2_holders.is_empty() {
        return CostReport::zero();
    }
    // Lemma 27 first makes deg*_C(u) for all u known (counts only), then
    // each holder ships each edge (2 words) to the responsible chain
    // member. We model the reshuffle as an all-to-all among V⁻ with the
    // same total volume, which upper-bounds the paper's targeted sends.
    let v_minus = cluster.v_minus();
    let mut triples = Vec::new();
    let mut slot = 0usize;
    for &(holder, count) in e2_holders {
        for _ in 0..count {
            let target = v_minus[slot % k];
            slot += 1;
            if target != holder {
                triples.push((holder, target, 0u64));
                triples.push((holder, target, 1u64));
            }
        }
    }
    route_triples(cluster.graph(), triples, bandwidth).report.named("theorem31-rearrange")
}

/// Theorems 26/28: builds a `(p', p)`-split `K_p`-partition tree over the
/// given split graph on `cluster`, so that (cost-accounted) all parts are
/// known to all of `V⁻`.
///
/// `lambda` is the Theorem 11 chain-length parameter (the paper uses
/// `λ = 1` for `p > 3`; exposed for the E5/A1 ablations).
///
/// # Panics
///
/// Panics if the cluster's `V⁻` is empty or `split.k` does not match it.
pub fn build_split_tree(
    cluster: &CommunicationCluster,
    split: &SplitGraph,
    p: usize,
    p_prime: usize,
    lambda: usize,
    bandwidth: usize,
) -> SplitTreeOutcome {
    let k = cluster.k();
    assert!(k > 0, "cluster has empty V⁻");
    assert_eq!(split.k, k, "split graph V_1 must be the cluster's V⁻");
    let params = SplitParams::for_graph(split, p, p_prime);
    let grounds: Vec<u32> = (0..p).map(|l| params.ground(l)).collect();
    let mut tree = PartitionTree::new(p, grounds);
    let mut report = CostReport::zero();

    for level in 0..p {
        let paths: Vec<PathCode> = if level == 0 {
            vec![PathCode::root()]
        } else {
            tree.paths_at_level(level - 1)
                .into_iter()
                .flat_map(|parent| {
                    let parts = tree.node(parent).unwrap().part_count();
                    (0..parts).map(move |j| parent.child(j))
                })
                .collect()
        };
        if params.ground(level) == 0 {
            // degenerate: empty side — install trivial partitions
            for path in paths {
                tree.set_node(path, Partition::from_breaks(vec![0, 0]));
            }
            continue;
        }
        // Build the per-instance chunk streams (one chunk per chain member;
        // Lemma 30's T_max = O(1)).
        let mut builders: Vec<SplitLayerBuilder> = Vec::with_capacity(paths.len());
        let mut all_inputs: Vec<Vec<Vec<ppstream::Chunk>>> = Vec::with_capacity(paths.len());
        for path in &paths {
            let chunks = split_layer_chunks(split, &params, &tree, *path, level, k);
            let totals = crate::split::stream_totals(&chunks);
            builders.push(SplitLayerBuilder::new(&params, level, &totals));
            let mut inputs: Vec<Vec<ppstream::Chunk>> = vec![Vec::new(); k];
            for (r, c) in chunks.into_iter().enumerate() {
                inputs[r.min(k - 1)].push(c);
            }
            all_inputs.push(inputs);
        }
        let mut instances = Vec::with_capacity(paths.len());
        for (builder, inputs) in builders.iter_mut().zip(all_inputs) {
            instances.push(InstanceInput {
                algo: builder,
                budgets: SplitLayerBuilder::budgets(&params, level),
                inputs,
            });
        }
        let outcome =
            simulate(cluster, instances, lambda, bandwidth).expect("Lemma 29 respects its budgets");
        report.absorb(&outcome.report.clone().named(&format!("split-level{level}")));
        // Install partitions and broadcast them (Lemma 27).
        let mut broadcast_items: Vec<(VertexId, usize)> = Vec::new();
        for (path, tokens) in paths.iter().zip(outcome.outputs.iter()) {
            let partition = Partition::from_interval_tokens(
                tokens.iter().map(|&(_, t)| t).collect(),
                params.ground(level),
            );
            tree.set_node(*path, partition);
            broadcast_items.extend(tokens.iter().map(|&(v, _)| (v, 1)));
        }
        report.absorb(&gather_and_double_broadcast(cluster, &broadcast_items, bandwidth));
    }

    SplitTreeOutcome { tree, params, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::check_split_tree;
    use congest::graph::Graph;

    fn clique_cluster(n: usize) -> CommunicationCluster {
        let mut e = Vec::new();
        for u in 0..n as VertexId {
            for v in u + 1..n as VertexId {
                e.push((u, v));
            }
        }
        let g = Graph::from_edges(n, &e);
        CommunicationCluster::new(g, (0..n as VertexId).collect(), 1, 0.5)
    }

    fn demo_split(k: usize, n2: usize, density: u64, seed: u64) -> SplitGraph {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut e1 = Vec::new();
        let mut e2 = Vec::new();
        let mut e12 = Vec::new();
        for u in 0..k as u32 {
            for v in u + 1..k as u32 {
                if next() % 100 < density {
                    e1.push((u, v));
                }
            }
        }
        for u in 0..n2 as u32 {
            for v in u + 1..n2 as u32 {
                if next() % 100 < density {
                    e2.push((u, v));
                }
            }
        }
        for r in 0..k as u32 {
            for w in 0..n2 as u32 {
                if next() % 100 < density {
                    e12.push((r, w));
                }
            }
        }
        SplitGraph::new(k, n2, &e1, &e2, &e12)
    }

    #[test]
    fn distributed_split_tree_is_valid() {
        let cluster = clique_cluster(16);
        let split = demo_split(16, 20, 35, 7);
        let out = build_split_tree(&cluster, &split, 4, 2, 1, 1);
        let violations = check_split_tree(&split, &out.tree, &out.params);
        assert!(violations.is_empty(), "{violations:?}");
        assert!(out.report.rounds > 0);
    }

    #[test]
    fn k5_tree_with_three_inside() {
        let cluster = clique_cluster(16);
        let split = demo_split(16, 12, 40, 11);
        let out = build_split_tree(&cluster, &split, 5, 3, 1, 1);
        assert_eq!(out.params.pi(), 2);
        let violations = check_split_tree(&split, &out.tree, &out.params);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn rearrange_cost_is_positive_when_imbalanced() {
        let cluster = clique_cluster(8);
        let cost = rearrange_input_cost(&cluster, &[(0, 12)], 1);
        assert!(cost.rounds > 0);
        assert!(cost.messages >= 12, "messages = {}", cost.messages);
    }

    #[test]
    fn empty_v2_side_degenerates_gracefully() {
        let cluster = clique_cluster(9);
        let split = demo_split(9, 0, 50, 3);
        let out = build_split_tree(&cluster, &split, 4, 4, 1, 1);
        // all layers partition V1
        for l in 0..4 {
            assert_eq!(out.tree.ground[l], 9);
        }
        let violations = check_split_tree(&split, &out.tree, &out.params);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn deterministic_construction() {
        let cluster = clique_cluster(12);
        let split = demo_split(12, 10, 30, 5);
        let a = build_split_tree(&cluster, &split, 4, 2, 1, 1);
        let b = build_split_tree(&cluster, &split, 4, 2, 1, 1);
        for l in 0..4 {
            assert_eq!(a.tree.paths_at_level(l), b.tree.paths_at_level(l));
            for path in a.tree.paths_at_level(l) {
                assert_eq!(a.tree.node(path), b.tree.node(path));
            }
        }
    }
}
