//! Split graphs (Definition 21) and `(p', p)`-split `K_p`-partition trees
//! (Definition 22), with the Lemma 29 / Algorithm 2 layer builder.
//!
//! A split graph separates the world into `V_1` (the cluster's `V⁻`,
//! indexed by rank `0..k`) and `V_2` (everything else, indexed `0..n_2`),
//! with edge classes `E_1 ⊆ V_1×V_1`, `E_2 ⊆ V_2×V_2` (the imported `E'`)
//! and `E_12 ⊆ V_1×V_2` (the boundary `Ē`). A `(p', p)`-split tree has
//! `p` layers: the first `π = p − p'` partition `V_2` into at most `b`
//! parts per node, the remaining `p'` partition `V_1` into at most `a`
//! parts, under the six balance constraints of Definition 22 with
//! `c1 = 8, c2 = 36`.

use ppstream::{Budgets, Chunk, Emitter, MainAction, PartialPass, Token};

use crate::tree::{PartitionTree, PathCode};

/// Constants of Definition 22 / Lemma 29.
pub const SPLIT_C1: u64 = 8;
/// See [`SPLIT_C1`].
pub const SPLIT_C2: u64 = 36;

/// A split graph (Definition 21). Adjacency is stored from both sides so
/// that both `V_1`- and `V_2`-partition layers can compute their records.
#[derive(Debug, Clone)]
pub struct SplitGraph {
    /// `|V_1|` — ranks `0..k`.
    pub k: usize,
    /// `|V_2|` — indices `0..n2`.
    pub n2: usize,
    adj1_in_1: Vec<Vec<u32>>,
    adj1_in_2: Vec<Vec<u32>>,
    adj2_in_1: Vec<Vec<u32>>,
    adj2_in_2: Vec<Vec<u32>>,
    m1: u64,
    m2: u64,
    m12: u64,
}

impl SplitGraph {
    /// Builds a split graph from edge lists: `e1` over `V_1` ranks, `e2`
    /// over `V_2` indices, `e12` as `(rank, v2 index)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn new(
        k: usize,
        n2: usize,
        e1: &[(u32, u32)],
        e2: &[(u32, u32)],
        e12: &[(u32, u32)],
    ) -> Self {
        let mut adj1_in_1 = vec![Vec::new(); k];
        let mut adj1_in_2 = vec![Vec::new(); k];
        let mut adj2_in_1 = vec![Vec::new(); n2];
        let mut adj2_in_2 = vec![Vec::new(); n2];
        for &(u, v) in e1 {
            assert!((u as usize) < k && (v as usize) < k, "E1 endpoint out of range");
            adj1_in_1[u as usize].push(v);
            adj1_in_1[v as usize].push(u);
        }
        for &(u, v) in e2 {
            assert!((u as usize) < n2 && (v as usize) < n2, "E2 endpoint out of range");
            adj2_in_2[u as usize].push(v);
            adj2_in_2[v as usize].push(u);
        }
        for &(r, w) in e12 {
            assert!((r as usize) < k && (w as usize) < n2, "E12 endpoint out of range");
            adj1_in_2[r as usize].push(w);
            adj2_in_1[w as usize].push(r);
        }
        for a in adj1_in_1
            .iter_mut()
            .chain(adj1_in_2.iter_mut())
            .chain(adj2_in_1.iter_mut())
            .chain(adj2_in_2.iter_mut())
        {
            a.sort_unstable();
            a.dedup();
        }
        let m1 = adj1_in_1.iter().map(|a| a.len() as u64).sum::<u64>() / 2;
        let m2 = adj2_in_2.iter().map(|a| a.len() as u64).sum::<u64>() / 2;
        let m12 = adj1_in_2.iter().map(|a| a.len() as u64).sum::<u64>();
        SplitGraph { k, n2, adj1_in_1, adj1_in_2, adj2_in_1, adj2_in_2, m1, m2, m12 }
    }

    /// `|E_1|`, `|E_2|`, `|E_12|`.
    pub fn edge_counts(&self) -> (u64, u64, u64) {
        (self.m1, self.m2, self.m12)
    }

    /// Neighbors in `V_1` of a vertex on `side` (`true` = the vertex is in
    /// `V_1`).
    pub fn neighbors_in_1(&self, in_v1: bool, idx: u32) -> &[u32] {
        if in_v1 {
            &self.adj1_in_1[idx as usize]
        } else {
            &self.adj2_in_1[idx as usize]
        }
    }

    /// Neighbors in `V_2` of a vertex on `side`.
    pub fn neighbors_in_2(&self, in_v1: bool, idx: u32) -> &[u32] {
        if in_v1 {
            &self.adj1_in_2[idx as usize]
        } else {
            &self.adj2_in_2[idx as usize]
        }
    }

    fn count_in_interval(adj: &[u32], interval: (u32, u32)) -> u64 {
        let lo = adj.partition_point(|&x| x < interval.0);
        let hi = adj.partition_point(|&x| x < interval.1);
        (hi - lo) as u64
    }

    /// Whether the `V_1×V_1` edge `{u, v}` exists.
    pub fn has_e1(&self, u: u32, v: u32) -> bool {
        self.adj1_in_1[u as usize].binary_search(&v).is_ok()
    }

    /// Whether the `V_2×V_2` edge `{u, v}` exists.
    pub fn has_e2(&self, u: u32, v: u32) -> bool {
        self.adj2_in_2[u as usize].binary_search(&v).is_ok()
    }

    /// Whether the boundary edge `(rank, v2)` exists.
    pub fn has_e12(&self, rank: u32, w: u32) -> bool {
        self.adj1_in_2[rank as usize].binary_search(&w).is_ok()
    }
}

/// Shape parameters of a `(p', p)`-split `K_p`-tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitParams {
    /// Clique size / number of layers.
    pub p: usize,
    /// Number of clique vertices inside `V_1` (`2 ≤ p' ≤ p`).
    pub p_prime: usize,
    /// Branching bound for `V_1` layers.
    pub a: u64,
    /// Branching bound for `V_2` layers.
    pub b: u64,
    /// `|V_1|`.
    pub k: u64,
    /// `|V_2|`.
    pub n2: u64,
    /// `|E_1|`, `|E_2|`, `|E_12|`.
    pub m1: u64,
    /// See [`Self::m1`].
    pub m2: u64,
    /// See [`Self::m1`].
    pub m12: u64,
}

impl SplitParams {
    /// Derives parameters with `a = b = ⌈k^{1/p}⌉` (the choice of
    /// Theorem 26).
    pub fn for_graph(split: &SplitGraph, p: usize, p_prime: usize) -> Self {
        assert!(p >= 3 && (2..=p).contains(&p_prime), "need p ≥ 3 and 2 ≤ p' ≤ p");
        let (m1, m2, m12) = split.edge_counts();
        // branching 2·k^{1/p}, as for H-trees (constant-factor balance
        // widening; ablation A3)
        let a = (2.0 * (split.k as f64).powf(1.0 / p as f64)).ceil().max(1.0) as u64;
        SplitParams { p, p_prime, a, b: a, k: split.k as u64, n2: split.n2 as u64, m1, m2, m12 }
    }

    /// `π = p − p'`: number of `V_2` layers.
    pub fn pi(&self) -> usize {
        self.p - self.p_prime
    }

    /// Whether layer `level` partitions `V_1`.
    pub fn is_v1_layer(&self, level: usize) -> bool {
        level >= self.pi()
    }

    /// Total graph size `n = k + n_2` (the additive slack of Def. 22).
    pub fn n(&self) -> u64 {
        self.k + self.n2
    }

    /// `m̃_1 = max(m_1, k·a)`, `m̃_2 = max(m_2, n·b)`, `m̃_12 = max(m_12, n·a)`.
    pub fn m_tilde(&self) -> (u64, u64, u64) {
        (
            self.m1.max(self.k * self.a),
            self.m2.max(self.n() * self.b),
            self.m12.max(self.n() * self.a),
        )
    }

    /// The three active `(record field, limit)` counters at `level`.
    ///
    /// Record layout: `[deg_V1, deg_V2, up_same_side, up_other_side, count]`
    /// — `up_same_side` sums degrees into ancestor parts on the layer's own
    /// side; `up_other_side` into ancestor parts of the other side.
    pub fn counters(&self, level: usize) -> [(usize, u64); 3] {
        let (mt1, mt2, mt12) = self.m_tilde();
        let n = self.n();
        if !self.is_v1_layer(level) {
            [
                // DEG_2to2
                (1, SPLIT_C1 * self.m2 / self.b + n),
                // UP_DEG_2to2
                (2, SPLIT_C2 * level as u64 * mt2 / (self.b * self.b) + n),
                // DEG_2to1
                (0, SPLIT_C1 * self.m12 / self.b + n),
            ]
        } else {
            let i1 = (level - self.pi()) as u64;
            [
                // DEG_1to1
                (0, SPLIT_C1 * self.m1 / self.a + self.k),
                // UP_DEG_1to1
                (2, SPLIT_C2 * i1 * mt1 / (self.a * self.a) + self.k),
                // UP_DEG_1to2
                (3, SPLIT_C2 * self.pi() as u64 * mt12 / (self.a * self.b) + n),
            ]
        }
    }

    /// Ground-set size of layer `level`.
    pub fn ground(&self, level: usize) -> u32 {
        if self.is_v1_layer(level) {
            self.k as u32
        } else {
            self.n2 as u32
        }
    }

    /// Branching bound of layer `level`.
    pub fn branching(&self, level: usize) -> u64 {
        if self.is_v1_layer(level) {
            self.a
        } else {
            self.b
        }
    }
}

/// The per-vertex record `[deg_V1, deg_V2, up_same, up_other, 1]` of vertex
/// `w` (on the side being partitioned at `level`) for building the children
/// of the node at `path`.
pub fn split_vertex_record(
    split: &SplitGraph,
    params: &SplitParams,
    tree: &PartitionTree,
    path: PathCode,
    level: usize,
    w: u32,
) -> Vec<Token> {
    let in_v1 = params.is_v1_layer(level);
    let deg1 = split.neighbors_in_1(in_v1, w).len() as u64;
    let deg2 = split.neighbors_in_2(in_v1, w).len() as u64;
    let mut up_same = 0u64;
    let mut up_other = 0u64;
    for (i, &l) in path.elements().iter().enumerate() {
        let node = tree.node(path.prefix(i)).expect("ancestor node missing");
        let interval = node.interval(l);
        let anc_is_v1 = params.is_v1_layer(i);
        let count = if anc_is_v1 {
            SplitGraph::count_in_interval(split.neighbors_in_1(in_v1, w), interval)
        } else {
            SplitGraph::count_in_interval(split.neighbors_in_2(in_v1, w), interval)
        };
        if anc_is_v1 == in_v1 {
            up_same += count;
        } else {
            up_other += count;
        }
    }
    vec![deg1, deg2, up_same, up_other, 1]
}

/// Builds the input chunks of one layer instance: the ground set is cut
/// into `chunks` contiguous intervals (one per `V⁻` chain member); each
/// chunk's main record is the field-wise sum of its per-vertex records and
/// its aux records are the per-vertex records (Lemma 29's stream layout).
pub fn split_layer_chunks(
    split: &SplitGraph,
    params: &SplitParams,
    tree: &PartitionTree,
    path: PathCode,
    level: usize,
    chunks: usize,
) -> Vec<Chunk> {
    let ground = params.ground(level) as usize;
    let chunks = chunks.max(1);
    let block = ground.div_ceil(chunks).max(1);
    let mut out = Vec::with_capacity(chunks);
    let mut w = 0usize;
    while w < ground {
        let hi = (w + block).min(ground);
        let mut aux = Vec::with_capacity(hi - w);
        let mut main = vec![0u64; 5];
        for v in w..hi {
            let rec = split_vertex_record(split, params, tree, path, level, v as u32);
            for (m, r) in main.iter_mut().zip(&rec) {
                *m += r;
            }
            aux.push(rec);
        }
        out.push(Chunk { main, aux });
        w = hi;
    }
    out
}

/// Field-wise sums of all main records of a chunk stream (the global
/// aggregates handed to [`SplitLayerBuilder::new`]).
pub fn stream_totals(chunks: &[Chunk]) -> Vec<u64> {
    let mut totals = vec![0u64; 5];
    for c in chunks {
        for (t, v) in totals.iter_mut().zip(&c.main) {
            *t += v;
        }
    }
    totals
}

/// Algorithm 2 of the paper (Lemma 29): the counter-based partial-pass
/// builder of one split-tree layer. Reads interval-summary main tokens;
/// when a whole chunk fits, it is absorbed at main-token granularity;
/// otherwise the chunk's aux tokens are requested and vertices are added
/// one at a time, closing parts on overflow.
#[derive(Debug)]
pub struct SplitLayerBuilder {
    counters: [(usize, u64); 3],
    acc: [u64; 3],
    start: u32,
    idx: u32,
    parts_emitted: usize,
    // balance machinery (see `LayerBuilder` in `htree`): optional closes at
    // tight volume targets, guarded by the mandatory-close budget so the
    // part count stays within the branching bound
    branching: u64,
    rem: [u64; 3],
    targets: [u64; 3],
}

impl SplitLayerBuilder {
    /// Creates a builder for the children of a node whose new parts live at
    /// `level`.
    ///
    /// `totals` are the field-wise sums of the whole stream's records
    /// (`[Σ deg_V1, Σ deg_V2, Σ up_same, Σ up_other, k]`), globally
    /// aggregable in `Õ(1)` rounds; they drive the optional early closes
    /// that keep partitions balanced.
    pub fn new(params: &SplitParams, level: usize, totals: &[u64]) -> Self {
        let counters = params.counters(level);
        let branching = params.branching(level).max(1);
        let mut rem = [0u64; 3];
        let mut targets = [1u64; 3];
        for (i, &(field, _)) in counters.iter().enumerate() {
            let total = totals.get(field).copied().unwrap_or(0);
            rem[i] = total;
            targets[i] = (3 * total / (2 * branching)).max(1);
        }
        SplitLayerBuilder {
            counters,
            acc: [0; 3],
            start: 0,
            idx: 0,
            parts_emitted: 0,
            branching,
            rem,
            targets,
        }
    }

    /// Mandatory closes the remaining stream can still force: each
    /// mandatory close of counter `i` accumulates at least half the limit
    /// (the additive `+n`/`+k` slack is at most half by construction).
    fn mandatory_bound(&self) -> u64 {
        self.counters
            .iter()
            .zip(&self.rem)
            .map(|(&(_, limit), &rem)| (2 * rem).div_ceil(limit.max(1)))
            .sum::<u64>()
            + 1
    }

    fn may_close_optionally(&self) -> bool {
        let over = self.acc.iter().zip(&self.targets).any(|(&a, &t)| a >= t);
        over && self.may_close_budget_ok()
    }

    fn may_close_budget_ok(&self) -> bool {
        self.parts_emitted as u64 + 1 + self.mandatory_bound() <= self.branching
    }

    /// Budgets per Lemma 29: `N_in = k` (one main token per chain member),
    /// `N_out = O(k^{1/p})`, `B_aux = O(N_out)`, `B_write = N_out`.
    pub fn budgets(params: &SplitParams, level: usize) -> Budgets {
        let n_out = 2 * params.branching(level) as usize + 2;
        Budgets {
            n_in: params.k as usize + 1,
            n_out,
            b_aux: n_out + params.k as usize, // one GET-AUX may close no part on ties
            b_write: n_out,
            state_words: 10,
        }
    }

    fn fits(&self, rec: &[Token]) -> bool {
        self.counters.iter().zip(&self.acc).all(|(&(field, limit), &acc)| acc + rec[field] <= limit)
    }

    fn add(&mut self, rec: &[Token]) {
        for ((&(field, _), acc), rem) in
            self.counters.iter().zip(self.acc.iter_mut()).zip(self.rem.iter_mut())
        {
            *acc += rec[field];
            *rem = rem.saturating_sub(rec[field]);
        }
    }

    fn close_part(&mut self, out: &mut Emitter) {
        out.write(((self.start as u64) << 32) | self.idx as u64);
        self.parts_emitted += 1;
        self.start = self.idx;
        self.acc = [0; 3];
    }
}

impl PartialPass for SplitLayerBuilder {
    fn on_main(&mut self, token: &[Token], _out: &mut Emitter) -> MainAction {
        let near_target = self
            .acc
            .iter()
            .zip(&self.targets)
            .zip(self.counters.iter())
            .any(|((&a, &t), &(field, _))| a + token[field] >= t);
        if self.fits(token) && !(near_target && self.may_close_budget_ok()) {
            self.add(token);
            self.idx += token[4] as u32; // vertex count of the chunk
            MainAction::Continue
        } else {
            MainAction::RequestAux
        }
    }

    fn on_aux(&mut self, token: &[Token], out: &mut Emitter) {
        if !self.fits(token) || self.may_close_optionally() {
            self.close_part(out);
        }
        // the additive `+n`/`+k` slack guarantees a fresh part fits one
        // vertex (Lemma 29)
        self.add(token);
        self.idx += 1;
    }

    fn finish(&mut self, out: &mut Emitter) {
        if self.idx > self.start || self.parts_emitted == 0 {
            self.close_part(out);
        }
    }
}

/// A violation found by [`check_split_tree`].
#[derive(Debug, Clone, PartialEq)]
pub struct SplitViolation {
    /// Node path.
    pub path: PathCode,
    /// Part index.
    pub part: usize,
    /// Constraint name (as in Definition 22).
    pub constraint: &'static str,
    /// Observed value.
    pub value: u64,
    /// Allowed limit.
    pub limit: u64,
}

/// Validates all built nodes of a split tree against Definition 22 plus the
/// per-node part-count bounds.
pub fn check_split_tree(
    split: &SplitGraph,
    tree: &PartitionTree,
    params: &SplitParams,
) -> Vec<SplitViolation> {
    let mut violations = Vec::new();
    for level in 0..tree.layers {
        let in_v1 = params.is_v1_layer(level);
        let counters = params.counters(level);
        let names: [&'static str; 3] = if in_v1 {
            ["DEG_1to1", "UP_DEG_1to1", "UP_DEG_1to2"]
        } else {
            ["DEG_2to2", "UP_DEG_2to2", "DEG_2to1"]
        };
        for path in tree.paths_at_level(level) {
            let node = tree.node(path).unwrap();
            if node.part_count() as u64 > params.branching(level) {
                violations.push(SplitViolation {
                    path,
                    part: usize::MAX,
                    constraint: "PART_COUNT",
                    value: node.part_count() as u64,
                    limit: params.branching(level),
                });
            }
            for (j, s, e) in node.parts() {
                let mut sums = [0u64; 3];
                for w in s..e {
                    let rec = split_vertex_record(split, params, tree, path, level, w);
                    for (i, &(field, _)) in counters.iter().enumerate() {
                        sums[i] += rec[field];
                    }
                }
                for (i, &(_, limit)) in counters.iter().enumerate() {
                    if sums[i] > limit {
                        violations.push(SplitViolation {
                            path,
                            part: j,
                            constraint: names[i],
                            value: sums[i],
                            limit,
                        });
                    }
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppstream::{run_local, Stream};

    /// Builds a random-ish deterministic split graph.
    fn demo_split(k: usize, n2: usize, density: u64) -> SplitGraph {
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut e1 = Vec::new();
        let mut e2 = Vec::new();
        let mut e12 = Vec::new();
        for u in 0..k as u32 {
            for v in u + 1..k as u32 {
                if next() % 100 < density {
                    e1.push((u, v));
                }
            }
        }
        for u in 0..n2 as u32 {
            for v in u + 1..n2 as u32 {
                if next() % 100 < density {
                    e2.push((u, v));
                }
            }
        }
        for r in 0..k as u32 {
            for w in 0..n2 as u32 {
                if next() % 100 < density {
                    e12.push((r, w));
                }
            }
        }
        SplitGraph::new(k, n2, &e1, &e2, &e12)
    }

    fn build_full_split_tree(
        split: &SplitGraph,
        p: usize,
        p_prime: usize,
    ) -> (PartitionTree, SplitParams) {
        let params = SplitParams::for_graph(split, p, p_prime);
        let grounds: Vec<u32> = (0..p).map(|l| params.ground(l)).collect();
        let mut tree = PartitionTree::new(p, grounds);
        for level in 0..p {
            let parents: Vec<PathCode> = if level == 0 {
                vec![PathCode::root()]
            } else {
                tree.paths_at_level(level - 1)
                    .into_iter()
                    .flat_map(|parent| {
                        let parts = tree.node(parent).unwrap().part_count();
                        (0..parts).map(move |j| parent.child(j))
                    })
                    .collect()
            };
            for path in parents {
                let chunks = split_layer_chunks(split, &params, &tree, path, level, split.k);
                let totals = stream_totals(&chunks);
                let stream = Stream::new(chunks);
                let mut builder = SplitLayerBuilder::new(&params, level, &totals);
                let budgets = SplitLayerBuilder::budgets(&params, level);
                let (tokens, _) = run_local(&mut builder, &stream, &budgets).unwrap();
                let partition =
                    crate::tree::Partition::from_interval_tokens(tokens, params.ground(level));
                tree.set_node(path, partition);
            }
        }
        (tree, params)
    }

    #[test]
    fn split_tree_satisfies_constraints() {
        let split = demo_split(16, 24, 30);
        let (tree, params) = build_full_split_tree(&split, 4, 2);
        let violations = check_split_tree(&split, &tree, &params);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn split_tree_layers_have_right_grounds() {
        let split = demo_split(12, 20, 25);
        let (tree, params) = build_full_split_tree(&split, 4, 2);
        assert_eq!(params.pi(), 2);
        assert_eq!(tree.ground[0], 20); // V2
        assert_eq!(tree.ground[1], 20);
        assert_eq!(tree.ground[2], 12); // V1
        assert_eq!(tree.ground[3], 12);
    }

    #[test]
    fn theorem_23_coverage_for_k4() {
        // dense split graph: check that for K4 instances with 2 vertices in
        // each side, the trace lands in a leaf whose ancestors contain all
        // four vertices at their levels.
        let split = demo_split(10, 14, 60);
        let (tree, _params) = build_full_split_tree(&split, 4, 2);
        let mut found = 0;
        for w1 in 0..14u32 {
            for w2 in w1 + 1..14 {
                if !split.has_e2(w1, w2) {
                    continue;
                }
                for r1 in 0..10u32 {
                    for r2 in r1 + 1..10 {
                        if !split.has_e1(r1, r2)
                            || !split.has_e12(r1, w1)
                            || !split.has_e12(r1, w2)
                            || !split.has_e12(r2, w1)
                            || !split.has_e12(r2, w2)
                        {
                            continue;
                        }
                        found += 1;
                        let traced = tree.trace(&[w1, w2, r1, r2]);
                        assert!(traced.is_some(), "no trace for K4 ({w1},{w2},{r1},{r2})");
                        let (path, part) = traced.unwrap();
                        let anc = tree.ancestors(path, part).unwrap();
                        let coords = [w1, w2, r1, r2];
                        for (i, (lvl, (s, e))) in anc.iter().enumerate() {
                            assert_eq!(*lvl, i);
                            assert!((*s..*e).contains(&coords[i]));
                        }
                    }
                }
            }
        }
        assert!(found > 0, "test graph has no cross K4s; densify");
    }

    #[test]
    fn part_counts_respect_branching() {
        let split = demo_split(16, 16, 40);
        let (tree, params) = build_full_split_tree(&split, 4, 2);
        for level in 0..4 {
            for path in tree.paths_at_level(level) {
                let c = tree.node(path).unwrap().part_count() as u64;
                assert!(
                    c <= params.branching(level),
                    "level {level}: {c} parts > {}",
                    params.branching(level)
                );
            }
        }
    }

    #[test]
    fn p_prime_p_builds_v1_only_tree() {
        // p' = p: all layers partition V1 (the in-cluster case)
        let split = demo_split(16, 4, 40);
        let (tree, params) = build_full_split_tree(&split, 4, 4);
        assert_eq!(params.pi(), 0);
        for level in 0..4 {
            assert_eq!(tree.ground[level], 16);
        }
        let violations = check_split_tree(&split, &tree, &params);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn chunk_sums_match_aux() {
        let split = demo_split(9, 11, 50);
        let params = SplitParams::for_graph(&split, 4, 2);
        let tree = PartitionTree::new(4, (0..4).map(|l| params.ground(l)).collect());
        let chunks = split_layer_chunks(&split, &params, &tree, PathCode::root(), 0, 3);
        for c in &chunks {
            let mut sums = vec![0u64; 5];
            for a in &c.aux {
                for (s, v) in sums.iter_mut().zip(a) {
                    *s += v;
                }
            }
            assert_eq!(c.main, sums);
        }
    }
}
