//! Theorem 16: distributed construction of a `K_3`-partition tree on a
//! `K_3`-compatible cluster, in `k^{1/3}·n^{o(1)}` rounds.
//!
//! The driver applies Lemma 18 (one simulated Lemma 17 instance per tree
//! node, chain length `λ = ⌈k^{1/3}⌉`) to build each of the three layers,
//! Lemma 19 (amplifier-chain broadcast) to make the root and middle layer
//! known to all of `V⁻`, and Lemma 20 to hand the leaf parts to `V*`
//! vertices in proportion to their communication degree.

use congest::cluster::CommunicationCluster;
use congest::graph::{Graph, VertexId};
use congest::metrics::CostReport;
use ppstream::{simulate, Chunk, InstanceInput};

use crate::balance::{amplifier_broadcast, balance_by_degree};
use crate::htree::{vertex_record, HTreeParams, LayerBuilder};
use crate::tree::{Partition, PartitionTree, PathCode};

/// Result of [`build_k3_tree`].
#[derive(Debug, Clone)]
pub struct K3TreeOutcome {
    /// The 3-layer `K_3`-partition tree over `V⁻` ranks.
    pub tree: PartitionTree,
    /// Tree shape parameters.
    pub params: HTreeParams,
    /// The graph on ranks `0..k` (cluster graph restricted to `V⁻`).
    pub rank_graph: Graph,
    /// For each leaf part `(path, part)`: the `V*` vertex (cluster-local
    /// id) that knows it after the Lemma 20 redistribution.
    pub leaf_owner: Vec<(PathCode, usize, VertexId)>,
    /// Measured cost of the whole construction.
    pub report: CostReport,
}

/// Builds the rank graph of a cluster: the induced subgraph on `V⁻`
/// relabelled by rank.
pub fn rank_graph(cluster: &CommunicationCluster) -> Graph {
    let v_minus = cluster.v_minus();
    let mut edges = Vec::new();
    for (r, &v) in v_minus.iter().enumerate() {
        for &u in cluster.graph().neighbors(v) {
            if u > v {
                if let Ok(ru) = v_minus.binary_search(&u) {
                    edges.push((r as VertexId, ru as VertexId));
                }
            }
        }
    }
    Graph::from_edges(v_minus.len(), &edges)
}

/// Builds one layer of the tree: runs `ζ` parallel Lemma 17 instances (one
/// per node path) through the Theorem 11 simulation, and installs the
/// resulting partitions. Returns the per-level cost and the producing
/// vertices of each emitted leaf token (used at the leaf layer).
fn build_layer(
    cluster: &CommunicationCluster,
    rank_graph: &Graph,
    tree: &mut PartitionTree,
    params: &HTreeParams,
    paths: &[PathCode],
    level: usize,
    lambda: usize,
    bandwidth: usize,
) -> (CostReport, Vec<(PathCode, Vec<(VertexId, u64)>)>) {
    let k = params.k;
    let mut builders: Vec<LayerBuilder> = Vec::with_capacity(paths.len());
    let mut all_inputs: Vec<Vec<Vec<Chunk>>> = Vec::with_capacity(paths.len());
    for path in paths {
        let records: Vec<Vec<u64>> =
            (0..k).map(|r| vertex_record(rank_graph, tree, *path, r)).collect();
        let totals = (records.iter().map(|r| r[0]).sum(), records.iter().map(|r| r[1]).sum());
        builders.push(LayerBuilder::new(params, level, totals));
        all_inputs
            .push(records.into_iter().map(|main| vec![Chunk { main, aux: vec![] }]).collect());
    }
    let mut instances = Vec::with_capacity(paths.len());
    for (builder, inputs) in builders.iter_mut().zip(all_inputs) {
        instances.push(InstanceInput {
            algo: builder,
            budgets: LayerBuilder::budgets(params),
            inputs,
        });
    }
    let outcome =
        simulate(cluster, instances, lambda, bandwidth).expect("Lemma 17 respects its budgets");
    let mut produced = Vec::with_capacity(paths.len());
    for (path, tokens) in paths.iter().zip(outcome.outputs.iter()) {
        let partition =
            Partition::from_interval_tokens(tokens.iter().map(|&(_, t)| t).collect(), k);
        tree.set_node(*path, partition);
        produced.push((*path, tokens.clone()));
    }
    (outcome.report, produced)
}

/// Theorem 16: builds a `K_3`-partition tree of `C[V⁻]` on a
/// `K_3`-compatible cluster.
///
/// After the build: the root and middle layers are (cost-accounted as)
/// known to all of `V⁻`; each leaf part is known to exactly one `V*`
/// vertex, with each `v ∈ V*` holding `O(deg_C(v)/μ)` parts.
///
/// # Panics
///
/// Panics if the cluster's `V⁻` is empty.
pub fn build_k3_tree(cluster: &CommunicationCluster, bandwidth: usize) -> K3TreeOutcome {
    let rg = rank_graph(cluster);
    let params = HTreeParams::for_graph(&rg, 3);
    let k = params.k;
    let lambda = (k as f64).powf(1.0 / 3.0).ceil() as usize;
    let mut tree = PartitionTree::new(3, vec![k; 3]);
    let mut report = CostReport::zero();

    // Level 0: the root partition.
    let (cost, produced) =
        build_layer(cluster, &rg, &mut tree, &params, &[PathCode::root()], 0, lambda, bandwidth);
    report.absorb(&cost.named("k3-level0"));
    let root_tokens: Vec<(VertexId, usize)> = produced[0].1.iter().map(|&(v, _)| (v, 1)).collect();
    report.absorb(&amplifier_broadcast(cluster, &root_tokens, bandwidth));

    // Level 1.
    let level1_paths: Vec<PathCode> = (0..tree.node(PathCode::root()).unwrap().part_count())
        .map(|j| PathCode::root().child(j))
        .collect();
    let (cost, produced) =
        build_layer(cluster, &rg, &mut tree, &params, &level1_paths, 1, lambda, bandwidth);
    report.absorb(&cost.named("k3-level1"));
    let mid_tokens: Vec<(VertexId, usize)> =
        produced.iter().flat_map(|(_, toks)| toks.iter().map(|&(v, _)| (v, 1))).collect();
    report.absorb(&amplifier_broadcast(cluster, &mid_tokens, bandwidth));

    // Level 2 (leaves).
    let mut leaf_paths = Vec::new();
    for p1 in &level1_paths {
        for j in 0..tree.node(*p1).unwrap().part_count() {
            leaf_paths.push(p1.child(j));
        }
    }
    let (cost, produced) =
        build_layer(cluster, &rg, &mut tree, &params, &leaf_paths, 2, lambda, bandwidth);
    report.absorb(&cost.named("k3-level2"));

    // Lemma 20: redistribute leaf parts to V* proportionally to degree.
    // Message j = j-th leaf part in deterministic (path, token) order.
    let mut messages: Vec<(PathCode, usize, VertexId)> = Vec::new();
    for (path, tokens) in &produced {
        let node = tree.node(*path).unwrap();
        // tokens are interval endpoints; part index recovered by start rank
        for &(producer, tok) in tokens {
            let start = (tok >> 32) as u32;
            let end = (tok & 0xffff_ffff) as u32;
            if start >= end {
                continue; // empty part carries no triangles
            }
            let part = node.part_of(start);
            messages.push((*path, part, producer));
        }
    }
    let producers: Vec<VertexId> = messages.iter().map(|&(_, _, p)| p).collect();
    // a leaf-part description = path + interval = O(p) words
    let assignment = balance_by_degree(cluster, &producers, 4, lambda, bandwidth);
    report.absorb(&assignment.report);
    let leaf_owner: Vec<(PathCode, usize, VertexId)> = messages
        .iter()
        .zip(assignment.owner_of.iter())
        .map(|(&(path, part, _), &owner)| (path, part, owner))
        .collect();

    K3TreeOutcome { tree, params, rank_graph: rg, leaf_owner, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::htree::check_htree;

    fn clique_cluster(n: usize) -> CommunicationCluster {
        let mut e = Vec::new();
        for u in 0..n as VertexId {
            for v in u + 1..n as VertexId {
                e.push((u, v));
            }
        }
        let g = Graph::from_edges(n, &e);
        let delta = (n as f64).cbrt() as usize;
        CommunicationCluster::new(g, (0..n as VertexId).collect(), delta.max(1), 0.5)
    }

    fn er_cluster(n: usize, density: u64) -> CommunicationCluster {
        let mut st = 42u64;
        let mut e = Vec::new();
        for u in 0..n as VertexId {
            for v in u + 1..n as VertexId {
                st = st.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if (st >> 33) % 100 < density {
                    e.push((u, v));
                }
            }
        }
        let g = Graph::from_edges(n, &e);
        CommunicationCluster::new(g, (0..n as VertexId).collect(), 2, 0.2)
    }

    #[test]
    fn k3_tree_is_valid_on_clique_cluster() {
        let cluster = clique_cluster(27);
        let out = build_k3_tree(&cluster, 1);
        let violations = check_htree(&out.rank_graph, &out.tree, &out.params);
        assert!(violations.is_empty(), "{violations:?}");
        assert!(out.report.rounds > 0);
    }

    #[test]
    fn k3_tree_is_valid_on_er_cluster() {
        let cluster = er_cluster(40, 35);
        let out = build_k3_tree(&cluster, 1);
        let violations = check_htree(&out.rank_graph, &out.tree, &out.params);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn every_nonempty_leaf_part_has_an_owner() {
        let cluster = clique_cluster(30);
        let out = build_k3_tree(&cluster, 1);
        let owned: std::collections::HashSet<(PathCode, usize)> =
            out.leaf_owner.iter().map(|&(p, j, _)| (p, j)).collect();
        for (path, part) in out.tree.leaf_parts() {
            let node = out.tree.node(path).unwrap();
            if node.part_len(part) > 0 {
                assert!(owned.contains(&(path, part)), "leaf ({path:?}, {part}) unowned");
            }
        }
    }

    #[test]
    fn leaf_load_tracks_degree() {
        let cluster = er_cluster(48, 40);
        let out = build_k3_tree(&cluster, 1);
        let mu = cluster.mu();
        let mut per_owner: std::collections::HashMap<VertexId, usize> = Default::default();
        for &(_, _, o) in &out.leaf_owner {
            *per_owner.entry(o).or_insert(0) += 1;
        }
        for (&v, &cnt) in &per_owner {
            let bound = 4.0 * (cluster.comm_degree(v) as f64 / mu) + 8.0;
            assert!(
                (cnt as f64) <= bound,
                "vertex {v} owns {cnt} leaves, degree-proportional bound {bound}"
            );
        }
    }

    #[test]
    fn construction_is_deterministic() {
        let cluster = er_cluster(36, 30);
        let a = build_k3_tree(&cluster, 1);
        let b = build_k3_tree(&cluster, 1);
        assert_eq!(a.leaf_owner, b.leaf_owner);
        for level in 0..3 {
            assert_eq!(a.tree.paths_at_level(level), b.tree.paths_at_level(level));
        }
    }

    #[test]
    fn triangle_coverage_via_trace() {
        let cluster = clique_cluster(24);
        let out = build_k3_tree(&cluster, 1);
        let rg = &out.rank_graph;
        // every triangle of the rank graph must trace to a leaf
        let mut checked = 0;
        for a in 0..rg.n() as u32 {
            for b in (a + 1)..rg.n() as u32 {
                if !rg.has_edge(a, b) {
                    continue;
                }
                for c in (b + 1)..rg.n() as u32 {
                    if rg.has_edge(a, c) && rg.has_edge(b, c) {
                        // all 6 orderings must trace (Theorem 13 needs one)
                        assert!(out.tree.trace(&[a, b, c]).is_some());
                        checked += 1;
                    }
                }
            }
        }
        assert!(checked > 0);
    }
}
