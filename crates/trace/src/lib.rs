//! Deterministic round-transcript capture, replay and diff.
//!
//! Both round engines (`congest::Network` and `runtime::ShardedNetwork`)
//! deliver each round's messages sorted by `(sender, payload)` into inboxes
//! walked in destination order, so every run has one **canonical message
//! stream**: `(round, to ↑, from ↑, payload ↑)`. The [`Recorder`] folds that
//! stream into a transcript at one of two fidelities:
//!
//! - [`Fidelity::Digest`] — one FNV-1a digest per round plus message/byte
//!   counts. No per-message storage, no allocation in the steady state
//!   (round records land in a pre-reserved buffer), so the engines' hot-path
//!   zero-allocation audit holds with capture on.
//! - [`Fidelity::Full`] — every `(round, from, to, payload)` tuple, for
//!   message-level diffing.
//!
//! Because the sharded engine's sender-id-ordered merge reproduces the
//! sequential engine's inboxes exactly, transcripts are **byte-identical
//! across engines and shard counts** (`tests/trace_identity.rs` pins this).
//! A recorded run can therefore be replayed on any engine and verified
//! divergence-free with [`diff`], which reports the first divergent round.
//!
//! Transcripts serialize in a hand-rolled versioned byte format (same
//! discipline as the service's `CLQCORPS` corpus format) documented in this
//! crate's README, and export to chrome://tracing JSON via
//! [`Transcript::chrome_trace_json`] using the per-round compute/exchange
//! phase splits captured alongside the stream.
//!
//! Capture is ambient: [`capture`] installs a thread-local [`Recorder`],
//! and the engines feed it from their `step` when one is active. The
//! `CLIQUE_TRACE` environment variable (`off | digest | full[:path]`,
//! warn-and-fallback parse like `CLIQUE_OBS`) selects the default
//! [`TraceMode`] carried by `ListingConfig`.

use std::cell::RefCell;
use std::fmt;
use std::path::PathBuf;

// ---------------------------------------------------------------------------
// FNV-1a
// ---------------------------------------------------------------------------

/// 64-bit FNV-1a over little-endian `u64` words — the same hash (and the
/// same constants) as the service corpus's fingerprints, duplicated here so
/// this crate stays a leaf dependency.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A hasher at the FNV offset basis.
    pub const fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Folds one word, byte by byte, little-endian.
    #[inline]
    pub fn write_u64(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// The current hash value.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// The content fingerprint of a graph: FNV-1a over `n` then every edge as
/// `(u << 32) | v`. Feed edges in the graph's canonical (sorted) order;
/// matches the service corpus's `fingerprint` exactly, which is what lets
/// `experiments replay` resolve a transcript header back to a graph spec.
pub fn graph_fingerprint(n: u64, edges: impl IntoIterator<Item = (u32, u32)>) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(n);
    for (u, v) in edges {
        h.write_u64(((u as u64) << 32) | v as u64);
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// Fidelity and the CLIQUE_TRACE mode
// ---------------------------------------------------------------------------

/// How much of the round stream a [`Recorder`] keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum Fidelity {
    /// No capture.
    #[default]
    Off = 0,
    /// Per-round digest + message/byte counts; near-zero overhead.
    Digest = 1,
    /// Every `(round, from, to, payload)` tuple.
    Full = 2,
}

impl Fidelity {
    /// Canonical spelling, as `CLIQUE_TRACE` accepts it.
    pub fn name(self) -> &'static str {
        match self {
            Fidelity::Off => "off",
            Fidelity::Digest => "digest",
            Fidelity::Full => "full",
        }
    }
}

/// A parsed `CLIQUE_TRACE` value: the capture fidelity plus an optional
/// file path the transcript is written to when the run finishes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceMode {
    /// Capture fidelity ([`Fidelity::Off`] means no capture).
    pub fidelity: Fidelity,
    /// Where to write the transcript (`full:/tmp/run.trace` syntax).
    pub path: Option<PathBuf>,
}

impl TraceMode {
    /// A non-capturing mode.
    pub const fn off() -> Self {
        TraceMode { fidelity: Fidelity::Off, path: None }
    }

    /// True when this mode asks for capture.
    pub fn is_on(&self) -> bool {
        self.fidelity != Fidelity::Off
    }
}

/// Parses a `CLIQUE_TRACE` value: `off`/`0`, `digest`/`1`, `full`/`2`,
/// optionally suffixed `:<path>` for the capturing fidelities
/// (case-insensitive on the fidelity). Anything else is `None`.
pub fn parse_mode(spec: &str) -> Option<TraceMode> {
    let s = spec.trim();
    let (fid, path) = match s.split_once(':') {
        Some((f, p)) if !p.trim().is_empty() => (f, Some(PathBuf::from(p.trim()))),
        Some(_) => return None, // "digest:" with an empty path is malformed
        None => (s, None),
    };
    let fidelity = match fid.trim().to_ascii_lowercase().as_str() {
        "off" | "0" => Fidelity::Off,
        "digest" | "1" => Fidelity::Digest,
        "full" | "2" => Fidelity::Full,
        _ => return None,
    };
    if fidelity == Fidelity::Off && path.is_some() {
        return None; // a path without capture is a spec error worth surfacing
    }
    Some(TraceMode { fidelity, path })
}

/// Reads `CLIQUE_TRACE` directly (no cache): unset means off, an
/// unrecognized value warns ([`obs::WarnKind::TraceEnv`]) and falls back to
/// off — the same warn-and-fallback convention as `CLIQUE_OBS`.
pub fn mode_from_env_uncached() -> TraceMode {
    match std::env::var("CLIQUE_TRACE") {
        Err(_) => TraceMode::off(),
        Ok(v) => parse_mode(&v).unwrap_or_else(|| {
            obs::warn(
                obs::WarnKind::TraceEnv,
                format_args!(
                    "unrecognized CLIQUE_TRACE value {v:?} \
                     (expected off | digest | full[:path]); trace capture stays off"
                ),
            );
            TraceMode::off()
        }),
    }
}

// ---------------------------------------------------------------------------
// Transcript data model
// ---------------------------------------------------------------------------

/// The fault plan a transcript was recorded under, serialized into every
/// header so `experiments replay` can re-arm the exact same fault schedule
/// from the file alone. Defined here (rather than in `congest::faults`,
/// which owns the semantics) because this crate is a leaf dependency of
/// `congest`; the faults module converts to and from this descriptor.
///
/// `mode` is the wire byte: `0` = no faults, `1` = chaos (faults land),
/// `2` = robust (faults are retried/recovered). The three rates are
/// parts-per-million probabilities per message (drop, corrupt) or per
/// vertex per round (crash).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultDescriptor {
    /// Fault-mode wire byte: `0` off, `1` chaos, `2` robust.
    pub mode: u8,
    /// Seed of the splitmix64 fault schedule.
    pub seed: u64,
    /// Message-drop probability, parts per million.
    pub drop_ppm: u32,
    /// Payload-corruption probability, parts per million.
    pub corrupt_ppm: u32,
    /// Per-vertex per-round crash probability, parts per million.
    pub crash_ppm: u32,
}

impl FaultDescriptor {
    /// The fault-free descriptor (mode byte 0, all rates zero).
    pub const fn off() -> Self {
        FaultDescriptor { mode: 0, seed: 0, drop_ppm: 0, corrupt_ppm: 0, crash_ppm: 0 }
    }

    /// True when the descriptor describes an armed fault plan.
    pub fn is_on(&self) -> bool {
        self.mode != 0
    }
}

/// Identifies the run a transcript was captured from. `graph_fingerprint`,
/// `protocol`, and `faults` are the replay contract ([`diff`] refuses to
/// compare across them); `engine` and `seed` are informational (the whole
/// point is that different engines produce the same stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Content fingerprint of the input graph ([`graph_fingerprint`]).
    pub graph_fingerprint: u64,
    /// Protocol name, e.g. `"bfs"` or `"listing:p=3"`.
    pub protocol: String,
    /// Engine that recorded the run, e.g. `"sequential"`, `"sharded"`.
    pub engine: String,
    /// Seed / parameter word of the run (protocol-defined).
    pub seed: u64,
    /// The fault plan the run was recorded under
    /// ([`FaultDescriptor::off`] for fault-free runs).
    pub faults: FaultDescriptor,
}

/// One round of the canonical message stream, digested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundRecord {
    /// The engine's round number (restarts at 0 for each engine run a
    /// capture spans).
    pub round: u64,
    /// FNV-1a over the round's sorted message stream.
    pub digest: u64,
    /// Messages delivered this round.
    pub messages: u64,
    /// Payload bytes delivered this round (8 per message).
    pub payload_bytes: u64,
}

/// One delivered message (kept only at [`Fidelity::Full`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Msg {
    /// Destination vertex.
    pub to: u32,
    /// Sending vertex.
    pub from: u32,
    /// The payload word.
    pub payload: u64,
}

/// A captured run: header + per-round records (+ the full message stream at
/// [`Fidelity::Full`]). The in-memory transcript also carries the per-round
/// compute/exchange phase splits for [`Transcript::chrome_trace_json`];
/// timings are **not serialized** — the byte format stores only the
/// deterministic stream, which is what makes transcripts byte-identical
/// across engines, shard counts, and machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transcript {
    /// Run identity.
    pub header: Header,
    /// Capture fidelity.
    pub fidelity: Fidelity,
    /// Per-round records, in execution order.
    pub rounds: Vec<RoundRecord>,
    /// The full message stream (empty unless [`Fidelity::Full`]); round
    /// `i`'s slice is recovered via [`Transcript::round_messages`].
    pub messages: Vec<Msg>,
    /// Per-round `(compute_ns, exchange_ns)` splits, aligned with `rounds`;
    /// `(0, 0)` when telemetry was off. In-memory only.
    pub timings: Vec<(u64, u64)>,
}

impl Transcript {
    /// Messages delivered in round index `idx` (empty unless the transcript
    /// was captured at [`Fidelity::Full`]).
    pub fn round_messages(&self, idx: usize) -> &[Msg] {
        if self.fidelity != Fidelity::Full || idx >= self.rounds.len() {
            return &[];
        }
        let start: u64 = self.rounds[..idx].iter().map(|r| r.messages).sum();
        let len = self.rounds[idx].messages;
        &self.messages[start as usize..(start + len) as usize]
    }

    /// Total messages across all rounds.
    pub fn total_messages(&self) -> u64 {
        self.rounds.iter().map(|r| r.messages).sum()
    }
}

// ---------------------------------------------------------------------------
// Recorder + ambient capture
// ---------------------------------------------------------------------------

/// Round-record capacity reserved up front so that digest-fidelity capture
/// never allocates in the engines' steady-state `step` (the hot-path audit
/// runs with `CLIQUE_TRACE=digest`). Runs longer than this still work —
/// the buffers just grow amortized past it.
const RESERVED_ROUNDS: usize = 4096;

/// Accumulates the canonical message stream into a [`Transcript`].
///
/// The engines drive it once per round: [`Recorder::begin_round`], one
/// [`Recorder::message`] per delivered message in canonical order, then
/// [`Recorder::end_round`]. At [`Fidelity::Digest`] a message is an FNV
/// fold plus two counter bumps — no allocation.
#[derive(Debug)]
pub struct Recorder {
    fidelity: Fidelity,
    header: Header,
    rounds: Vec<RoundRecord>,
    messages: Vec<Msg>,
    timings: Vec<(u64, u64)>,
    cur_round: u64,
    cur_digest: Fnv1a,
    cur_messages: u64,
    in_round: bool,
}

impl Recorder {
    /// A recorder with the steady-state round capacity pre-reserved.
    pub fn new(fidelity: Fidelity, header: Header) -> Self {
        Recorder {
            fidelity,
            header,
            rounds: Vec::with_capacity(RESERVED_ROUNDS),
            messages: Vec::new(),
            timings: Vec::with_capacity(RESERVED_ROUNDS),
            cur_round: 0,
            cur_digest: Fnv1a::new(),
            cur_messages: 0,
            in_round: false,
        }
    }

    /// The capture fidelity.
    pub fn fidelity(&self) -> Fidelity {
        self.fidelity
    }

    /// Starts a round's stream.
    #[inline]
    pub fn begin_round(&mut self, round: u64) {
        debug_assert!(!self.in_round, "begin_round without end_round");
        self.cur_round = round;
        self.cur_digest = Fnv1a::new();
        self.cur_messages = 0;
        self.in_round = true;
    }

    /// Feeds one delivered message, in canonical `(to, from, payload)`
    /// order. Allocation-free at digest fidelity.
    #[inline]
    pub fn message(&mut self, to: u32, from: u32, payload: u64) {
        if self.fidelity == Fidelity::Off {
            return;
        }
        self.cur_digest.write_u64(((to as u64) << 32) | from as u64);
        self.cur_digest.write_u64(payload);
        self.cur_messages += 1;
        if self.fidelity == Fidelity::Full {
            self.messages.push(Msg { to, from, payload });
        }
    }

    /// Closes the round, recording its digest/counts and phase split
    /// (`(0, 0)` when the engine's phase timer was inert).
    #[inline]
    pub fn end_round(&mut self, compute_ns: u64, exchange_ns: u64) {
        debug_assert!(self.in_round, "end_round without begin_round");
        self.in_round = false;
        if self.fidelity == Fidelity::Off {
            return;
        }
        self.rounds.push(RoundRecord {
            round: self.cur_round,
            digest: self.cur_digest.finish(),
            messages: self.cur_messages,
            payload_bytes: self.cur_messages * 8,
        });
        self.timings.push((compute_ns, exchange_ns));
    }

    /// Finalizes into a [`Transcript`].
    pub fn finish(self) -> Transcript {
        debug_assert!(!self.in_round, "finish inside an open round");
        Transcript {
            header: self.header,
            fidelity: self.fidelity,
            rounds: self.rounds,
            messages: self.messages,
            timings: self.timings,
        }
    }
}

thread_local! {
    /// The ambient recorder the engines feed. Thread-local by design: a
    /// capture scope covers exactly the engine runs the wrapped closure
    /// drives from this thread (the sharded engine's `step` is recorded on
    /// its submitting thread), so concurrent service jobs never interleave.
    static AMBIENT: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// True when an ambient recorder is installed on this thread. One TLS read;
/// the engines use it to skip stream iteration entirely when not capturing.
#[inline]
pub fn active() -> bool {
    AMBIENT.with(|a| a.borrow().is_some())
}

/// Runs `f` against the ambient recorder, if any. The engines' per-round
/// hook: a no-op (one TLS read) when no capture is in progress.
#[inline]
pub fn with_active(f: impl FnOnce(&mut Recorder)) {
    AMBIENT.with(|a| {
        if let Some(rec) = a.borrow_mut().as_mut() {
            f(rec);
        }
    });
}

/// Installs an ambient [`Recorder`] on this thread, runs `f`, and returns
/// its result with the captured [`Transcript`]. Every engine round stepped
/// from this thread inside `f` lands in the transcript, in execution order.
/// The recorder is removed even if `f` panics; nested captures are not
/// supported (the inner one wins for its scope in release builds, asserts
/// in debug).
pub fn capture<R>(fidelity: Fidelity, header: Header, f: impl FnOnce() -> R) -> (R, Transcript) {
    struct Clear;
    impl Drop for Clear {
        fn drop(&mut self) {
            AMBIENT.with(|a| *a.borrow_mut() = None);
        }
    }
    let prev = AMBIENT.with(|a| a.borrow_mut().replace(Recorder::new(fidelity, header)));
    debug_assert!(prev.is_none(), "nested trace capture is not supported");
    let guard = Clear;
    let r = f();
    let rec = AMBIENT.with(|a| a.borrow_mut().take()).expect("recorder removed during capture");
    drop(guard);
    (r, rec.finish())
}

// ---------------------------------------------------------------------------
// Versioned byte format
// ---------------------------------------------------------------------------

/// File magic of the transcript format.
pub const TRACE_MAGIC: &[u8; 8] = b"CLQTRACE";

/// Current format version. Bump on any layout change; readers reject other
/// versions outright (no silent migration), like the corpus format.
/// Version 2 added the header's [`FaultDescriptor`].
pub const TRACE_FORMAT_VERSION: u32 = 2;

/// Why a transcript failed to load.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with [`TRACE_MAGIC`].
    BadMagic,
    /// The file is a transcript of an unsupported version.
    VersionMismatch {
        /// The version found in the file.
        found: u32,
    },
    /// The byte stream is structurally invalid.
    Malformed(&'static str),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "i/o error: {e}"),
            TraceError::BadMagic => write!(f, "not a transcript file (bad magic)"),
            TraceError::VersionMismatch { found } => {
                write!(
                    f,
                    "unsupported transcript version {found} (expected {TRACE_FORMAT_VERSION})"
                )
            }
            TraceError::Malformed(what) => write!(f, "malformed transcript: {what}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Bounds-checked little-endian cursor (the corpus reader's discipline).
struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        let end = self.pos.checked_add(n).ok_or(TraceError::Malformed("length overflow"))?;
        if end > self.buf.len() {
            return Err(TraceError::Malformed("unexpected end of data"));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, TraceError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, TraceError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, TraceError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn read_str(r: &mut ByteReader<'_>) -> Result<String, TraceError> {
    let len = r.u32()? as usize;
    if len > r.remaining() {
        return Err(TraceError::Malformed("string length exceeds data"));
    }
    String::from_utf8(r.bytes(len)?.to_vec())
        .map_err(|_| TraceError::Malformed("string is not UTF-8"))
}

impl Transcript {
    /// Serializes to the canonical byte format (see `README.md`). The
    /// encoding is a pure function of the deterministic stream: two runs
    /// that delivered the same messages serialize identically, whatever
    /// engine, shard count, or telemetry level produced them.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.rounds.len() * 32 + self.messages.len() * 16);
        out.extend_from_slice(TRACE_MAGIC);
        out.extend_from_slice(&TRACE_FORMAT_VERSION.to_le_bytes());
        out.push(self.fidelity as u8);
        out.extend_from_slice(&self.header.graph_fingerprint.to_le_bytes());
        out.extend_from_slice(&self.header.seed.to_le_bytes());
        push_str(&mut out, &self.header.protocol);
        push_str(&mut out, &self.header.engine);
        out.push(self.header.faults.mode);
        out.extend_from_slice(&self.header.faults.seed.to_le_bytes());
        out.extend_from_slice(&self.header.faults.drop_ppm.to_le_bytes());
        out.extend_from_slice(&self.header.faults.corrupt_ppm.to_le_bytes());
        out.extend_from_slice(&self.header.faults.crash_ppm.to_le_bytes());
        out.extend_from_slice(&(self.rounds.len() as u32).to_le_bytes());
        for r in &self.rounds {
            out.extend_from_slice(&r.round.to_le_bytes());
            out.extend_from_slice(&r.digest.to_le_bytes());
            out.extend_from_slice(&r.messages.to_le_bytes());
            out.extend_from_slice(&r.payload_bytes.to_le_bytes());
        }
        if self.fidelity == Fidelity::Full {
            out.extend_from_slice(&(self.messages.len() as u64).to_le_bytes());
            for m in &self.messages {
                out.extend_from_slice(&m.to.to_le_bytes());
                out.extend_from_slice(&m.from.to_le_bytes());
                out.extend_from_slice(&m.payload.to_le_bytes());
            }
        }
        out
    }

    /// Parses the byte format. Validates everything before returning:
    /// counts are checked against the remaining bytes *before* allocating,
    /// and at full fidelity the message total must match the per-round
    /// counts. Loaded transcripts carry no timings.
    pub fn from_bytes(bytes: &[u8]) -> Result<Transcript, TraceError> {
        let mut r = ByteReader::new(bytes);
        if r.bytes(8).map_err(|_| TraceError::BadMagic)? != TRACE_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = r.u32().map_err(|_| TraceError::BadMagic)?;
        if version != TRACE_FORMAT_VERSION {
            return Err(TraceError::VersionMismatch { found: version });
        }
        let fidelity = match r.u8()? {
            1 => Fidelity::Digest,
            2 => Fidelity::Full,
            _ => return Err(TraceError::Malformed("unknown fidelity")),
        };
        let graph_fingerprint = r.u64()?;
        let seed = r.u64()?;
        let protocol = read_str(&mut r)?;
        let engine = read_str(&mut r)?;
        let fault_mode = r.u8()?;
        if fault_mode > 2 {
            return Err(TraceError::Malformed("unknown fault mode"));
        }
        let faults = FaultDescriptor {
            mode: fault_mode,
            seed: r.u64()?,
            drop_ppm: r.u32()?,
            corrupt_ppm: r.u32()?,
            crash_ppm: r.u32()?,
        };
        let round_count = r.u32()? as usize;
        if round_count > r.remaining() / 32 {
            return Err(TraceError::Malformed("round count exceeds data"));
        }
        let mut rounds = Vec::with_capacity(round_count);
        for _ in 0..round_count {
            rounds.push(RoundRecord {
                round: r.u64()?,
                digest: r.u64()?,
                messages: r.u64()?,
                payload_bytes: r.u64()?,
            });
        }
        let mut messages = Vec::new();
        if fidelity == Fidelity::Full {
            let total = r.u64()? as usize;
            if total > r.remaining() / 16 {
                return Err(TraceError::Malformed("message count exceeds data"));
            }
            let expected: u64 = rounds.iter().map(|rr| rr.messages).sum();
            if total as u64 != expected {
                return Err(TraceError::Malformed("message total disagrees with round counts"));
            }
            messages.reserve_exact(total);
            for _ in 0..total {
                messages.push(Msg { to: r.u32()?, from: r.u32()?, payload: r.u64()? });
            }
        }
        if !r.exhausted() {
            return Err(TraceError::Malformed("trailing bytes"));
        }
        Ok(Transcript {
            header: Header { graph_fingerprint, protocol, engine, seed, faults },
            fidelity,
            rounds,
            messages,
            timings: Vec::new(),
        })
    }

    /// Writes the transcript to `path` (canonical bytes).
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Loads a transcript from `path`.
    pub fn load(path: &std::path::Path) -> Result<Transcript, TraceError> {
        Transcript::from_bytes(&std::fs::read(path)?)
    }
}

// ---------------------------------------------------------------------------
// Diff
// ---------------------------------------------------------------------------

/// The first point where two transcripts disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Position in the round sequence (0-based; equals the engine round
    /// for single-run captures).
    pub index: usize,
    /// The diverging round on side A.
    pub a: RoundRecord,
    /// The diverging round on side B.
    pub b: RoundRecord,
    /// Side A's messages for that round (full fidelity only).
    pub messages_a: Vec<Msg>,
    /// Side B's messages for that round (full fidelity only).
    pub messages_b: Vec<Msg>,
}

/// Result of [`diff`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceDiff {
    /// Same stream, round for round.
    Identical,
    /// The headers describe different runs; streams were not compared.
    /// The payload names the differing field.
    HeaderMismatch(&'static str),
    /// The streams diverge; here is the first divergent round.
    Divergence(Box<Divergence>),
    /// One stream is a strict prefix of the other.
    LengthMismatch {
        /// Round count on side A.
        rounds_a: usize,
        /// Round count on side B.
        rounds_b: usize,
    },
}

impl TraceDiff {
    /// True for [`TraceDiff::Identical`].
    pub fn is_identical(&self) -> bool {
        matches!(self, TraceDiff::Identical)
    }
}

impl fmt::Display for TraceDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceDiff::Identical => write!(f, "transcripts identical"),
            TraceDiff::HeaderMismatch(field) => {
                write!(f, "headers describe different runs ({field} differs)")
            }
            TraceDiff::Divergence(d) => {
                write!(
                    f,
                    "first divergence at round index {} (round {}): \
                     A digest {:#018x} ({} msgs) vs B digest {:#018x} ({} msgs)",
                    d.index, d.a.round, d.a.digest, d.a.messages, d.b.digest, d.b.messages
                )?;
                if !d.messages_a.is_empty() || !d.messages_b.is_empty() {
                    for (side, msgs) in [("A", &d.messages_a), ("B", &d.messages_b)] {
                        write!(f, "\n  {side}:")?;
                        for m in msgs.iter().take(8) {
                            write!(f, " {}->{}:{:#x}", m.from, m.to, m.payload)?;
                        }
                        if msgs.len() > 8 {
                            write!(f, " … ({} total)", msgs.len())?;
                        }
                    }
                }
                Ok(())
            }
            TraceDiff::LengthMismatch { rounds_a, rounds_b } => {
                write!(
                    f,
                    "streams agree but lengths differ: {rounds_a} rounds vs {rounds_b} rounds"
                )
            }
        }
    }
}

/// Round-by-round comparison of two transcripts. Headers must agree on
/// `graph_fingerprint`, `protocol`, and the fault descriptor (engine and
/// seed are informational — comparing a sequential recording against a
/// sharded replay is the point, but comparing runs under *different fault
/// plans* is a category error: their streams legitimately differ).
/// Reports the first divergent round with both sides' digests, and both
/// sides' messages when both transcripts carry them.
pub fn diff(a: &Transcript, b: &Transcript) -> TraceDiff {
    if a.header.graph_fingerprint != b.header.graph_fingerprint {
        return TraceDiff::HeaderMismatch("graph_fingerprint");
    }
    if a.header.protocol != b.header.protocol {
        return TraceDiff::HeaderMismatch("protocol");
    }
    if a.header.faults != b.header.faults {
        return TraceDiff::HeaderMismatch("faults");
    }
    let common = a.rounds.len().min(b.rounds.len());
    for i in 0..common {
        if a.rounds[i] != b.rounds[i] {
            return TraceDiff::Divergence(Box::new(Divergence {
                index: i,
                a: a.rounds[i],
                b: b.rounds[i],
                messages_a: a.round_messages(i).to_vec(),
                messages_b: b.round_messages(i).to_vec(),
            }));
        }
    }
    if a.rounds.len() != b.rounds.len() {
        return TraceDiff::LengthMismatch { rounds_a: a.rounds.len(), rounds_b: b.rounds.len() };
    }
    TraceDiff::Identical
}

// ---------------------------------------------------------------------------
// chrome://tracing export
// ---------------------------------------------------------------------------

impl Transcript {
    /// Renders the transcript as chrome://tracing "trace event" JSON: one
    /// `X` (complete) event per phase per round, laid end to end on a
    /// single timeline, with the round's message count and digest as args.
    /// Durations come from the per-round phase splits captured alongside
    /// the stream (PR 6's `PhaseTimer`); rounds recorded with telemetry off
    /// — including every loaded transcript, since timings are not
    /// serialized — get nominal 1 µs spans so the round structure still
    /// renders. Open the output in any Chromium `about:tracing`.
    pub fn chrome_trace_json(&self) -> String {
        let mut events = Vec::with_capacity(self.rounds.len() * 2 + 1);
        events.push(format!(
            "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \
             \"args\": {{\"name\": \"{} on {} (fp {:#018x})\"}}}}",
            self.header.protocol, self.header.engine, self.header.graph_fingerprint
        ));
        let mut ts_us = 0.0f64;
        for (i, r) in self.rounds.iter().enumerate() {
            let (c_ns, e_ns) = self.timings.get(i).copied().unwrap_or((0, 0));
            for (name, ns) in [("compute", c_ns), ("exchange", e_ns)] {
                let dur_us = if ns == 0 { 1.0 } else { ns as f64 / 1e3 };
                events.push(format!(
                    "{{\"name\": \"{name}\", \"cat\": \"round\", \"ph\": \"X\", \
                     \"ts\": {ts_us:.3}, \"dur\": {dur_us:.3}, \"pid\": 1, \"tid\": 1, \
                     \"args\": {{\"round\": {}, \"messages\": {}, \"digest\": \"{:#018x}\"}}}}",
                    r.round, r.messages, r.digest
                ));
                ts_us += dur_us;
            }
        }
        format!("{{\"traceEvents\": [\n{}\n]}}\n", events.join(",\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> Header {
        Header {
            graph_fingerprint: 0xdead_beef_0bad_cafe,
            protocol: "test:p=3".into(),
            engine: "sequential".into(),
            seed: 42,
            faults: FaultDescriptor::off(),
        }
    }

    fn record(fidelity: Fidelity) -> Transcript {
        let mut rec = Recorder::new(fidelity, header());
        rec.begin_round(0);
        rec.message(1, 0, 7);
        rec.message(2, 0, 9);
        rec.end_round(100, 200);
        rec.begin_round(1);
        rec.message(0, 1, 11);
        rec.end_round(0, 0);
        rec.finish()
    }

    #[test]
    fn parse_mode_accepts_the_documented_grammar() {
        assert_eq!(parse_mode("off"), Some(TraceMode::off()));
        assert_eq!(
            parse_mode("digest"),
            Some(TraceMode { fidelity: Fidelity::Digest, path: None })
        );
        assert_eq!(
            parse_mode(" FULL:/tmp/x.trace "),
            Some(TraceMode { fidelity: Fidelity::Full, path: Some(PathBuf::from("/tmp/x.trace")) })
        );
        assert_eq!(parse_mode("1"), Some(TraceMode { fidelity: Fidelity::Digest, path: None }));
        assert_eq!(parse_mode("digest:"), None, "empty path is malformed");
        assert_eq!(parse_mode("off:/tmp/x"), None, "a path without capture is malformed");
        assert_eq!(parse_mode("loud"), None);
    }

    #[test]
    fn digest_and_full_agree_on_rounds() {
        let d = record(Fidelity::Digest);
        let f = record(Fidelity::Full);
        assert_eq!(d.rounds, f.rounds, "fidelity must not change the digests");
        assert!(d.messages.is_empty());
        assert_eq!(f.messages.len(), 3);
        assert_eq!(f.round_messages(0).len(), 2);
        assert_eq!(f.round_messages(1), &[Msg { to: 0, from: 1, payload: 11 }]);
        assert_eq!(d.rounds[0].payload_bytes, 16);
    }

    #[test]
    fn byte_format_round_trips_canonically() {
        for fidelity in [Fidelity::Digest, Fidelity::Full] {
            let t = record(fidelity);
            let bytes = t.to_bytes();
            let back = Transcript::from_bytes(&bytes).expect("parses");
            assert_eq!(back.header, t.header);
            assert_eq!(back.fidelity, t.fidelity);
            assert_eq!(back.rounds, t.rounds);
            assert_eq!(back.messages, t.messages);
            assert!(back.timings.is_empty(), "timings are not serialized");
            assert_eq!(back.to_bytes(), bytes, "re-encoding must be canonical");
        }
    }

    #[test]
    fn reader_rejects_corruption() {
        let t = record(Fidelity::Full);
        let good = t.to_bytes();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(Transcript::from_bytes(&bad_magic), Err(TraceError::BadMagic)));

        let mut bad_version = good.clone();
        bad_version[8] = 99;
        assert!(matches!(
            Transcript::from_bytes(&bad_version),
            Err(TraceError::VersionMismatch { found: 99 })
        ));

        let truncated = &good[..good.len() - 1];
        assert!(matches!(Transcript::from_bytes(truncated), Err(TraceError::Malformed(_))));

        let mut trailing = good.clone();
        trailing.push(0);
        assert!(matches!(Transcript::from_bytes(&trailing), Err(TraceError::Malformed(_))));

        assert!(matches!(Transcript::from_bytes(b"short"), Err(TraceError::BadMagic)));
    }

    #[test]
    fn diff_reports_the_first_divergent_round() {
        let a = record(Fidelity::Full);
        let mut b = record(Fidelity::Full);
        assert!(diff(&a, &b).is_identical());

        b.rounds[1].digest ^= 1;
        match diff(&a, &b) {
            TraceDiff::Divergence(d) => {
                assert_eq!(d.index, 1);
                assert_eq!(d.a.round, 1);
                assert_eq!(d.messages_a, vec![Msg { to: 0, from: 1, payload: 11 }]);
            }
            other => panic!("expected divergence, got {other:?}"),
        }

        let mut short = record(Fidelity::Full);
        short.rounds.pop();
        short.messages.pop();
        assert_eq!(diff(&a, &short), TraceDiff::LengthMismatch { rounds_a: 2, rounds_b: 1 });

        let mut foreign = record(Fidelity::Full);
        foreign.header.graph_fingerprint ^= 1;
        assert_eq!(diff(&a, &foreign), TraceDiff::HeaderMismatch("graph_fingerprint"));
        // a different fault plan is a different run, not a divergence
        let mut faulted = record(Fidelity::Full);
        faulted.header.faults =
            FaultDescriptor { mode: 1, seed: 9, drop_ppm: 100, corrupt_ppm: 0, crash_ppm: 0 };
        assert_eq!(diff(&a, &faulted), TraceDiff::HeaderMismatch("faults"));
        // engine and seed are informational: replays legitimately differ there
        let mut replayed = record(Fidelity::Full);
        replayed.header.engine = "sharded".into();
        replayed.header.seed = 7;
        assert!(diff(&a, &replayed).is_identical());
    }

    #[test]
    fn fault_descriptor_round_trips_through_the_byte_format() {
        let mut rec = Recorder::new(Fidelity::Digest, header());
        rec.begin_round(0);
        rec.message(1, 0, 7);
        rec.end_round(0, 0);
        let mut t = rec.finish();
        t.header.faults = FaultDescriptor {
            mode: 2,
            seed: 0x5eed_5eed_5eed_5eed,
            drop_ppm: 1_000,
            corrupt_ppm: 250,
            crash_ppm: 10,
        };
        let bytes = t.to_bytes();
        let back = Transcript::from_bytes(&bytes).expect("parses");
        assert_eq!(back.header.faults, t.header.faults);
        assert_eq!(back.to_bytes(), bytes, "re-encoding must be canonical");
        // a corrupted mode byte (right after the engine string) is rejected
        let engine_end = bytes
            .windows("sequential".len())
            .position(|w| w == b"sequential")
            .expect("engine string present")
            + "sequential".len();
        let mut bad = bytes.clone();
        bad[engine_end] = 3;
        assert!(matches!(
            Transcript::from_bytes(&bad),
            Err(TraceError::Malformed("unknown fault mode"))
        ));
    }

    #[test]
    fn ambient_capture_feeds_the_recorder_and_clears_on_exit() {
        assert!(!active());
        let (result, t) = capture(Fidelity::Digest, header(), || {
            assert!(active());
            with_active(|rec| {
                rec.begin_round(0);
                rec.message(1, 0, 5);
                rec.end_round(0, 0);
            });
            "done"
        });
        assert_eq!(result, "done");
        assert!(!active());
        assert_eq!(t.rounds.len(), 1);
        assert_eq!(t.rounds[0].messages, 1);
        // with no recorder installed the hook is a no-op
        with_active(|_| panic!("no recorder should be active"));
    }

    #[test]
    fn capture_clears_the_recorder_on_panic() {
        let caught = std::panic::catch_unwind(|| {
            capture(Fidelity::Digest, header(), || panic!("boom"));
        });
        assert!(caught.is_err());
        assert!(!active(), "a panicking capture must not leak its recorder");
    }

    #[test]
    fn chrome_export_emits_two_spans_per_round() {
        let t = record(Fidelity::Digest);
        let json = t.chrome_trace_json();
        assert_eq!(json.matches("\"compute\"").count(), 2);
        assert_eq!(json.matches("\"exchange\"").count(), 2);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"dur\": 0.100"), "100ns compute span renders as 0.1us: {json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn graph_fingerprint_separates_graphs() {
        let a = graph_fingerprint(4, [(0, 1), (1, 2)]);
        let b = graph_fingerprint(4, [(0, 1), (1, 3)]);
        let c = graph_fingerprint(5, [(0, 1), (1, 2)]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, graph_fingerprint(4, [(0, 1), (1, 2)]));
    }
}
