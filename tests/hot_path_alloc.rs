//! Structural audit of the zero-allocation round hot path.
//!
//! A counting global allocator is armed around steady-state `step` calls of
//! both engines; the assertion that **zero** allocations happen is what the
//! runtime README's hot-path audit refers to. The warm-up rounds before
//! arming are the point: first rounds legitimately grow inbox/outbox/bucket
//! capacities, and the claim is that a *steady-state* round reuses all of
//! them.
//!
//! This file is its own test binary (one `#[test]`) so no concurrent test
//! can pollute the counter, and the allocator hook stays out of every other
//! suite.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use congest::graph::{Graph, VertexId};
use congest::network::{Network, Outbox, Protocol, Word};
use runtime::{ShardedNetwork, WorkerPool};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Counts allocations (on any thread — the counter is process-global, so
/// pool workers are audited too) performed while `f` runs.
fn allocations_during(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    f();
    ARMED.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

/// The dense round workload: every vertex messages all neighbors every
/// round (the same shape as the bench crate's heartbeat).
struct Beat {
    me: VertexId,
    acc: u64,
}

impl Protocol for Beat {
    fn on_round(&mut self, round: u64, inbox: &[(VertexId, Word)], out: &mut Outbox, g: &Graph) {
        for &(_, w) in inbox {
            self.acc ^= w;
        }
        let word = self.acc.wrapping_add(round) ^ self.me as u64;
        for &v in g.neighbors(self.me) {
            out.send(v, word);
        }
    }

    fn done(&self) -> bool {
        false
    }
}

fn beats(n: usize) -> Vec<Beat> {
    (0..n as VertexId).map(|me| Beat { me, acc: me as u64 }).collect()
}

const WARMUP_ROUNDS: usize = 4;
const MEASURED_ROUNDS: usize = 3;

#[test]
fn steady_state_step_allocates_nothing_in_either_engine() {
    // The audit runs with telemetry ENABLED: phase timers and counters are
    // part of the steady-state round and must not cost an allocation. The
    // env var is read lazily on first metric touch — during the warm-up
    // rounds below, before the counter is armed — so the one-time
    // `std::env::var` allocation stays outside the measured window.
    std::env::set_var("CLIQUE_OBS", "on");

    let n = 512;
    let g = graphs::random_regular(n, 8, 7);

    // Sequential engine: flat epoch-stamped bandwidth counters, inbox
    // double buffer, one reused outbox.
    let mut net = Network::new(&g, beats(n));
    for _ in 0..WARMUP_ROUNDS {
        net.step();
    }
    assert_eq!(obs::level(), obs::Level::On, "telemetry must be live during the audit");
    let (seq_rounds_before, _, _) = obs::metrics().engine_seq.totals();
    let count = allocations_during(|| {
        for _ in 0..MEASURED_ROUNDS {
            net.step();
        }
    });
    assert_eq!(count, 0, "sequential steady-state step must not allocate (CLIQUE_OBS=on)");
    let (seq_rounds, _, _) = obs::metrics().engine_seq.totals();
    assert_eq!(
        seq_rounds - seq_rounds_before,
        MEASURED_ROUNDS as u64,
        "the phase timer must have recorded every measured round"
    );

    // Sharded engine on a dedicated pool: persistent per-shard scratch,
    // flat bucket matrix, allocation-free indexed batches.
    let pool = Arc::new(WorkerPool::new(2));
    let mut net = ShardedNetwork::with_pool(&g, beats(n), 1, 2, pool);
    for _ in 0..WARMUP_ROUNDS {
        net.step();
    }
    let (par_rounds_before, _, _) = obs::metrics().engine_sharded.totals();
    let count = allocations_during(|| {
        for _ in 0..MEASURED_ROUNDS {
            net.step();
        }
    });
    assert_eq!(count, 0, "sharded steady-state step must not allocate (CLIQUE_OBS=on)");
    let (par_rounds, _, _) = obs::metrics().engine_sharded.totals();
    assert_eq!(
        par_rounds - par_rounds_before,
        MEASURED_ROUNDS as u64,
        "the phase timer must have recorded every measured sharded round"
    );

    // With digest transcript capture armed (the `CLIQUE_TRACE=digest`
    // path), the steady-state step must STILL allocate nothing: the
    // recorder pre-reserves its round tables and the digest path is pure
    // FNV folding over the already-sorted inboxes.
    let header = |engine: &str| trace::Header {
        graph_fingerprint: 0,
        protocol: "alloc-audit".into(),
        engine: engine.into(),
        seed: 0,
        faults: trace::FaultDescriptor::off(),
    };
    let mut net = Network::new(&g, beats(n));
    let ((), t) = trace::capture(trace::Fidelity::Digest, header("sequential"), || {
        for _ in 0..WARMUP_ROUNDS {
            net.step();
        }
        let count = allocations_during(|| {
            for _ in 0..MEASURED_ROUNDS {
                net.step();
            }
        });
        assert_eq!(count, 0, "sequential step must not allocate with digest capture armed");
    });
    assert_eq!(t.rounds.len(), WARMUP_ROUNDS + MEASURED_ROUNDS, "every round was recorded");
    assert!(t.rounds.iter().all(|r| r.messages > 0), "the heartbeat messages every round");

    let pool = Arc::new(WorkerPool::new(2));
    let mut net = ShardedNetwork::with_pool(&g, beats(n), 1, 2, pool);
    let ((), t2) = trace::capture(trace::Fidelity::Digest, header("sharded:2"), || {
        for _ in 0..WARMUP_ROUNDS {
            net.step();
        }
        let count = allocations_during(|| {
            for _ in 0..MEASURED_ROUNDS {
                net.step();
            }
        });
        assert_eq!(count, 0, "sharded step must not allocate with digest capture armed");
    });
    assert_eq!(
        t.rounds, t2.rounds,
        "the audit doubles as an identity check: both engines' transcripts agree"
    );
}
