//! Property-based tests (proptest) on the core invariants:
//! listing exactness on random graphs, partition balance, decomposition
//! remainder bounds, router delivery, and streaming-simulation
//! equivalence.

use clique_listing::{list_cliques_congest, ListingConfig};
use congest::graph::{Graph, VertexId};
use proptest::prelude::*;

fn arbitrary_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (4usize..max_n, 0u64..u64::MAX).prop_map(|(n, seed)| {
        // density varies with the seed
        let p = 0.05 + (seed % 20) as f64 / 60.0;
        graphs::erdos_renyi(n, p, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn listing_matches_oracle_triangles(g in arbitrary_graph(40)) {
        let out = list_cliques_congest(&g, 3, &ListingConfig::default());
        prop_assert_eq!(out.cliques, graphs::list_cliques(&g, 3));
    }

    #[test]
    fn listing_matches_oracle_k4(g in arbitrary_graph(30)) {
        let out = list_cliques_congest(&g, 4, &ListingConfig::default());
        prop_assert_eq!(out.cliques, graphs::list_cliques(&g, 4));
    }

    #[test]
    fn decomposition_remainder_bounded(g in arbitrary_graph(60)) {
        let d = expander_decomp::decompose(&g, 0.25);
        prop_assert!(d.remainder_fraction(&g) <= 0.25 + 1e-9);
        // clusters vertex-disjoint
        let mut seen = vec![false; g.n()];
        for c in &d.clusters {
            for &v in &c.vertices {
                prop_assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
        }
    }

    #[test]
    fn lemma8_defect_bounded(g in arbitrary_graph(60)) {
        let eps = 0.25;
        let d = expander_decomp::decompose(&g, eps);
        let fs = expander_decomp::build_frontier(&g, &d);
        let defect = expander_decomp::frontier::lemma8_defect(&g, &d, &fs);
        prop_assert!(defect as f64 <= 2.0 * eps * g.m() as f64 + 1e-9);
    }

    #[test]
    fn router_delivers_everything(
        seed in 0u64..1000,
        n in 4usize..24,
        packets in 1usize..40,
    ) {
        let g = graphs::erdos_renyi(n, 0.6, seed);
        prop_assume!(g.is_connected());
        let pkts: Vec<congest::routing::Packet> = (0..packets)
            .map(|i| congest::routing::Packet {
                src: (i % n) as VertexId,
                dst: ((i * 7 + 3) % n) as VertexId,
                payload: i as u64,
            })
            .collect();
        let total = pkts.len();
        let out = congest::routing::route(&g, pkts, 1);
        let delivered: usize = out.delivered.iter().map(Vec::len).sum();
        prop_assert_eq!(delivered, total);
    }

    #[test]
    fn htree_constraints_hold_on_random_clusters(seed in 0u64..500, n in 12usize..40) {
        let g = graphs::erdos_renyi(n, 0.4, seed);
        prop_assume!(g.m() > n);
        let cluster = congest::cluster::CommunicationCluster::new(
            g.clone(),
            (0..g.n() as VertexId).collect(),
            2,
            0.2,
        );
        prop_assume!(cluster.k() >= 4);
        // the cluster subgraph must be connected for routing
        prop_assume!(g.is_connected());
        let out = partition_trees::build_k3::build_k3_tree(&cluster, 1);
        let violations =
            partition_trees::htree::check_htree(&out.rank_graph, &out.tree, &out.params);
        prop_assert!(violations.is_empty(), "{:?}", violations);
    }

    #[test]
    fn partition_part_of_is_consistent(breaks in proptest::collection::vec(0u32..100, 1..10)) {
        let mut b = breaks;
        b.push(0);
        b.sort_unstable();
        let k = *b.last().unwrap();
        prop_assume!(k > 0);
        let p = partition_trees::Partition::from_breaks(b);
        for r in 0..k {
            let j = p.part_of(r);
            let (s, e) = p.interval(j);
            prop_assert!(s <= r && r < e, "rank {} not in its part [{}, {})", r, s, e);
        }
    }

    #[test]
    fn cost_report_composition_is_monotone(
        r1 in 0u64..1000, m1 in 0u64..1000,
        r2 in 0u64..1000, m2 in 0u64..1000,
    ) {
        let a = congest::metrics::CostReport::new(r1, m1);
        let b = congest::metrics::CostReport::new(r2, m2);
        let seq = a.then(&b);
        let par = a.alongside(&b);
        prop_assert!(seq.rounds >= par.rounds);
        prop_assert_eq!(seq.messages, par.messages);
        prop_assert_eq!(seq.rounds, r1 + r2);
        prop_assert_eq!(par.rounds, r1.max(r2));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn split_tree_constraints_hold_on_random_instances(
        seed in 0u64..300,
        k in 8usize..20,
        n2 in 4usize..24,
    ) {
        // random split graph
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut e1 = vec![];
        let mut e2 = vec![];
        let mut e12 = vec![];
        for u in 0..k as u32 {
            for v in u + 1..k as u32 {
                if next() % 100 < 40 { e1.push((u, v)); }
            }
        }
        for u in 0..n2 as u32 {
            for v in u + 1..n2 as u32 {
                if next() % 100 < 30 { e2.push((u, v)); }
            }
        }
        for r in 0..k as u32 {
            for w in 0..n2 as u32 {
                if next() % 100 < 30 { e12.push((r, w)); }
            }
        }
        let split = partition_trees::SplitGraph::new(k, n2, &e1, &e2, &e12);
        // a clique cluster as communication fabric
        let mut edges = vec![];
        for u in 0..k as u32 {
            for v in u + 1..k as u32 { edges.push((u, v)); }
        }
        let g = Graph::from_edges(k, &edges);
        let cluster = congest::cluster::CommunicationCluster::new(
            g, (0..k as VertexId).collect(), 1, 0.5,
        );
        let out = partition_trees::build_split_tree(&cluster, &split, 4, 2, 1, 1);
        let violations = partition_trees::check_split_tree(&split, &out.tree, &out.params);
        prop_assert!(violations.is_empty(), "{:?}", violations);
    }

    #[test]
    fn bandwidth_never_increases_routing_rounds(
        seed in 0u64..200,
        n in 6usize..20,
    ) {
        let g = graphs::erdos_renyi(n, 0.7, seed);
        prop_assume!(g.is_connected());
        let pkts: Vec<congest::routing::Packet> = (0..3 * n)
            .map(|i| congest::routing::Packet {
                src: (i % n) as VertexId,
                dst: ((i * 5 + 2) % n) as VertexId,
                payload: i as u64,
            })
            .collect();
        let slow = congest::routing::route(&g, pkts.clone(), 1).report.rounds;
        let fast = congest::routing::route(&g, pkts, 4).report.rounds;
        // greedy scheduling anomalies allow tiny regressions; never large ones
        prop_assert!(fast <= slow + 2, "bw=4 slower ({fast}) than bw=1 ({slow})");
    }

    #[test]
    fn randomized_baseline_matches_oracle(seed in 0u64..100) {
        let g = graphs::erdos_renyi(28, 0.25, seed);
        let out = clique_listing::baselines::list_cliques_randomized(
            &g, 3, &ListingConfig::default(), seed ^ 0xabc,
        );
        prop_assert_eq!(out.cliques, graphs::list_cliques(&g, 3));
    }

    #[test]
    fn degeneracy_bounds_clique_size(seed in 0u64..200, n in 5usize..40) {
        let g = graphs::erdos_renyi(n, 0.3, seed);
        let (_, d) = graphs::degeneracy_order(&g);
        // a K_p needs degeneracy >= p-1
        for p in 3..=5 {
            if graphs::algo::count_cliques(&g, p) > 0 {
                prop_assert!(d >= p - 1);
            }
        }
    }

    #[test]
    fn two_hop_views_are_sound_and_complete(seed in 0u64..100, n in 5usize..22) {
        let g = graphs::erdos_renyi(n, 0.4, seed);
        let alpha = g.max_degree();
        let (views, _) = congest::protocols::collect_two_hop(&g, alpha, 1);
        for view in views.into_iter().flatten() {
            let c = view.center;
            let nbrs = g.neighbors(c);
            for &(a, b) in &view.edges {
                // soundness: learned edges are real and between neighbors
                prop_assert!(g.has_edge(a, b));
                prop_assert!(nbrs.contains(&a) && nbrs.contains(&b));
            }
            // completeness: every edge among neighbors is learned
            for (i, &a) in nbrs.iter().enumerate() {
                for &b in &nbrs[i + 1..] {
                    if g.has_edge(a, b) {
                        prop_assert!(view.edges.contains(&(a, b)), "missing ({a},{b})");
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Engine-parity properties: the sharded multi-threaded engine must produce
// byte-identical transcripts (states, round counts, message counts) to the
// sequential reference engine at every shard count.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sharded_bfs_matches_sequential(g in arbitrary_graph(48), root in 0u32..8) {
        prop_assume!((root as usize) < g.n());
        let (d0, r0) = congest::protocols::distributed_bfs_on(&congest::Sequential, &g, root);
        for shards in [1usize, 2, 8] {
            let (d, r) =
                congest::protocols::distributed_bfs_on(&runtime::Sharded::new(shards), &g, root);
            prop_assert_eq!(&d, &d0, "distances diverge at {} shards", shards);
            prop_assert_eq!(&r, &r0, "cost diverges at {} shards", shards);
        }
    }

    #[test]
    fn sharded_spanning_aggregate_matches_sequential(g in arbitrary_graph(40)) {
        prop_assume!(g.is_connected());
        let inputs: Vec<u64> = (0..g.n() as u64).map(|i| i * 31 + 7).collect();
        let (s0, c0) = congest::protocols::aggregate_sum_on(&congest::Sequential, &g, &inputs);
        for shards in [1usize, 2, 8] {
            let (s, c) =
                congest::protocols::aggregate_sum_on(&runtime::Sharded::new(shards), &g, &inputs);
            prop_assert_eq!(&s, &s0, "sums diverge at {} shards", shards);
            prop_assert_eq!(&c, &c0, "cost diverges at {} shards", shards);
        }
    }

    #[test]
    fn sharded_two_hop_matches_sequential(g in arbitrary_graph(36), alpha in 1usize..12) {
        let (v0, c0) =
            congest::protocols::collect_two_hop_on(&congest::Sequential, &g, alpha, 1);
        for shards in [1usize, 2, 8] {
            let (v, c) = congest::protocols::collect_two_hop_on(
                &runtime::Sharded::new(shards), &g, alpha, 1,
            );
            prop_assert_eq!(&v, &v0, "views diverge at {} shards", shards);
            prop_assert_eq!(&c, &c0, "cost diverges at {} shards", shards);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn sharded_full_listing_matches_sequential_k3(g in arbitrary_graph(36)) {
        let seq = ListingConfig {
            engine: clique_listing::EngineChoice::Sequential,
            ..ListingConfig::default()
        };
        let base = list_cliques_congest(&g, 3, &seq);
        for shards in [1usize, 2, 8] {
            let par = ListingConfig {
                engine: clique_listing::EngineChoice::Sharded(shards),
                ..ListingConfig::default()
            };
            let out = list_cliques_congest(&g, 3, &par);
            prop_assert_eq!(&out.cliques, &base.cliques, "cliques diverge at {} shards", shards);
            prop_assert_eq!(
                &out.report.cost, &base.report.cost, "cost diverges at {} shards", shards
            );
            prop_assert_eq!(out.report.depth, base.report.depth);
        }
        // and the sequential run matches the oracle, so all engines do
        prop_assert_eq!(&base.cliques, &graphs::list_cliques(&g, 3));
    }

    #[test]
    fn sharded_full_listing_matches_sequential_k4(g in arbitrary_graph(28)) {
        let seq = ListingConfig {
            engine: clique_listing::EngineChoice::Sequential,
            ..ListingConfig::default()
        };
        let base = list_cliques_congest(&g, 4, &seq);
        for shards in [1usize, 2, 8] {
            let par = ListingConfig {
                engine: clique_listing::EngineChoice::Sharded(shards),
                ..ListingConfig::default()
            };
            let out = list_cliques_congest(&g, 4, &par);
            prop_assert_eq!(&out.cliques, &base.cliques, "cliques diverge at {} shards", shards);
            prop_assert_eq!(
                &out.report.cost, &base.report.cost, "cost diverges at {} shards", shards
            );
        }
        prop_assert_eq!(&base.cliques, &graphs::list_cliques(&g, 4));
    }

    #[test]
    fn truncated_runs_are_flagged_not_silent(n in 4usize..20) {
        // A two-hop collection squeezed into a 1-round budget cannot
        // finish on any graph with a low-degree vertex: the flag must say
        // so on both engines.
        let g = graphs::erdos_renyi(n, 0.5, n as u64);
        prop_assume!(g.m() >= 2);
        use congest::engine::EngineSelect;
        struct NeverDone;
        impl congest::Protocol for NeverDone {
            fn on_round(
                &mut self,
                _r: u64,
                _i: &[(VertexId, congest::network::Word)],
                _o: &mut congest::network::Outbox,
                _g: &Graph,
            ) {}
            fn done(&self) -> bool { false }
        }
        let mut seq = congest::Sequential.build(&g, (0..g.n()).map(|_| NeverDone).collect(), 1);
        let r1 = seq.run(3);
        prop_assert!(r1.truncated);
        prop_assert_eq!(r1.rounds, 3);
        let mut par =
            runtime::Sharded::new(2).build(&g, (0..g.n()).map(|_| NeverDone).collect(), 1);
        let r2 = par.run(3);
        prop_assert_eq!(&r1, &r2);
    }
}

// ---------------------------------------------------------------------------
// Bandwidth-enforcement parity: the engines now account bandwidth in flat
// slot-indexed counters; a reference replay of the historical per-round
// HashMap accounting must predict the exact panic both engines raise —
// same message (vertex, edge, bandwidth) and same round.
// ---------------------------------------------------------------------------

/// Replays a vertex's send schedule for every round: `(round, to, copies)`.
struct Scripted {
    sends: Vec<(u64, VertexId, usize)>,
    /// latest round seen by `on_round` (drives `done`)
    now: Option<u64>,
}

impl congest::Protocol for Scripted {
    fn on_round(
        &mut self,
        round: u64,
        _i: &[(VertexId, congest::network::Word)],
        out: &mut congest::network::Outbox,
        _g: &Graph,
    ) {
        self.now = Some(round);
        for &(r, to, copies) in &self.sends {
            if r == round {
                for _ in 0..copies {
                    out.send(to, 1);
                }
            }
        }
    }
    fn done(&self) -> bool {
        match self.now {
            None => self.sends.is_empty(),
            Some(t) => self.sends.iter().all(|&(r, _, _)| r <= t),
        }
    }
}

/// The seed's HashMap accounting (entry-count per `(from, to)`, vertices in
/// id order, sends in schedule order), replayed round by round: returns the
/// panic message the old engine would have raised, if any.
fn hashmap_accounting_panic(
    sends: &[Vec<(u64, VertexId, usize)>],
    bandwidth: usize,
    max_round: u64,
) -> Option<String> {
    for round in 0..=max_round {
        let mut per_edge: std::collections::HashMap<(VertexId, VertexId), usize> =
            std::collections::HashMap::new();
        for (v, plan) in sends.iter().enumerate() {
            for &(r, to, copies) in plan {
                if r != round {
                    continue;
                }
                for _ in 0..copies {
                    let c = per_edge.entry((v as VertexId, to)).or_insert(0);
                    *c += 1;
                    if *c > bandwidth {
                        return Some(format!(
                            "vertex {v} exceeded bandwidth {bandwidth} on edge to {to} in round {round}"
                        ));
                    }
                }
            }
        }
    }
    None
}

/// Runs the schedule on the engine `sel` selects, returning the panic
/// message if the run panicked.
fn scripted_panic<S: congest::engine::EngineSelect>(
    sel: &S,
    g: &Graph,
    sends: &[Vec<(u64, VertexId, usize)>],
    bandwidth: usize,
    budget: u64,
) -> Option<String> {
    let states: Vec<Scripted> =
        sends.iter().map(|plan| Scripted { sends: plan.clone(), now: None }).collect();
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut net = sel.build(g, states, bandwidth);
        congest::engine::Engine::run(&mut net, budget);
    }))
    .err()
    .map(|payload| {
        payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic payload".into())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn flat_counter_bandwidth_panics_match_hashmap_accounting(
        g in arbitrary_graph(24),
        seed in 0u64..u64::MAX,
        bandwidth in 1usize..3,
        round in 0u64..4,
    ) {
        prop_assume!(g.m() >= 2);
        let edges: Vec<_> = g.edges().collect();
        let e1 = edges[(seed % edges.len() as u64) as usize];
        let e2 = edges[((seed / 7) % edges.len() as u64) as usize];
        let mut sends: Vec<Vec<(u64, VertexId, usize)>> = vec![Vec::new(); g.n()];
        // two planted violations in the same round (possibly on the same
        // vertex): the engines must report the one the sequential
        // vertex-order accounting hits first
        sends[e1.0 as usize].push((round, e1.1, bandwidth + 1));
        sends[e2.1 as usize].push((round, e2.0, bandwidth + 2));
        let expected = hashmap_accounting_panic(&sends, bandwidth, round)
            .expect("the schedule plants a violation");
        let budget = round + 4;
        let seq = scripted_panic(&congest::Sequential, &g, &sends, bandwidth, budget);
        prop_assert_eq!(seq.as_deref(), Some(expected.as_str()), "sequential panic diverges");
        for shards in [1usize, 2, 8] {
            let par =
                scripted_panic(&runtime::Sharded::new(shards), &g, &sends, bandwidth, budget);
            prop_assert_eq!(
                par.as_deref(), Some(expected.as_str()),
                "sharded panic diverges at {} shards", shards
            );
        }
    }

    #[test]
    fn legal_schedules_do_not_panic_under_flat_counters(
        g in arbitrary_graph(24),
        seed in 0u64..u64::MAX,
        bandwidth in 1usize..3,
    ) {
        prop_assume!(g.m() >= 1);
        let edges: Vec<_> = g.edges().collect();
        let (u, v) = edges[(seed % edges.len() as u64) as usize];
        // exactly `bandwidth` copies on the same edge in two separate
        // rounds — legal, and a regression probe for counter reset between
        // rounds (a stale count would overflow in the second round)
        let mut sends: Vec<Vec<(u64, VertexId, usize)>> = vec![Vec::new(); g.n()];
        sends[u as usize].push((0, v, bandwidth));
        sends[u as usize].push((2, v, bandwidth));
        prop_assert_eq!(hashmap_accounting_panic(&sends, bandwidth, 2), None);
        prop_assert_eq!(scripted_panic(&congest::Sequential, &g, &sends, bandwidth, 6), None);
        for shards in [1usize, 2, 8] {
            prop_assert_eq!(
                scripted_panic(&runtime::Sharded::new(shards), &g, &sends, bandwidth, 6),
                None
            );
        }
    }
}
