//! Property test for the transcript-capture identity guarantee: recording
//! BFS, spanning aggregation, two-hop collection, and full clique listing
//! (p = 3, 4) on the sequential engine and on the sharded engine at 1, 2,
//! and 8 shards must produce **byte-identical** serialized transcripts at
//! both fidelities. The serialized form is the comparison object on
//! purpose — it proves the whole pipeline (canonical message order, FNV
//! digests, versioned encoding) is engine- and shard-count-invariant, not
//! just the in-memory digests.

use clique_listing::{list_cliques_congest_with, ListingConfig};
use congest::engine::EngineSelect;
use congest::graph::Graph;
use congest::protocols::{aggregate_sum_on, collect_two_hop_on, distributed_bfs_on};
use congest::Sequential;
use proptest::prelude::*;
use runtime::Sharded;

#[derive(Clone, Copy, Debug)]
enum Proto {
    Bfs,
    Spanning,
    TwoHop,
    Listing(usize),
}

fn run_proto<S: EngineSelect>(sel: &S, g: &Graph, proto: Proto) {
    match proto {
        Proto::Bfs => {
            distributed_bfs_on(sel, g, 0);
        }
        Proto::Spanning => {
            let inputs: Vec<u64> = (0..g.n() as u64).map(|v| v * 3 + 1).collect();
            aggregate_sum_on(sel, g, &inputs);
        }
        Proto::TwoHop => {
            collect_two_hop_on(sel, g, 6, 1);
        }
        Proto::Listing(p) => {
            let cfg = ListingConfig { trace: trace::TraceMode::off(), ..ListingConfig::default() };
            list_cliques_congest_with(sel, g, p, &cfg);
        }
    }
}

/// Captures one run and serializes it. The header is identical across
/// engines (including the `engine` field) so the full files can be
/// compared byte-for-byte.
fn transcript_bytes<S: EngineSelect>(
    sel: &S,
    g: &Graph,
    proto: Proto,
    fidelity: trace::Fidelity,
) -> Vec<u8> {
    let header = trace::Header {
        graph_fingerprint: trace::graph_fingerprint(g.n() as u64, g.edges()),
        protocol: format!("{proto:?}"),
        engine: "identity-suite".into(),
        seed: 0,
        faults: trace::FaultDescriptor::off(),
    };
    let ((), t) = trace::capture(fidelity, header, || run_proto(sel, g, proto));
    t.to_bytes()
}

fn all_engine_bytes(g: &Graph, proto: Proto, fidelity: trace::Fidelity) -> Vec<Vec<u8>> {
    vec![
        transcript_bytes(&Sequential, g, proto, fidelity),
        transcript_bytes(&Sharded::new(1), g, proto, fidelity),
        transcript_bytes(&Sharded::new(2), g, proto, fidelity),
        transcript_bytes(&Sharded::new(8), g, proto, fidelity),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn transcripts_are_byte_identical_across_engines_and_shard_counts(
        n in 12usize..28,
        seed in 0u64..1_000,
    ) {
        let p_edge = 0.15 + (seed % 10) as f64 / 30.0;
        let g = graphs::erdos_renyi(n, p_edge, seed);
        let mut protos = vec![Proto::Bfs, Proto::TwoHop, Proto::Listing(3), Proto::Listing(4)];
        if g.is_connected() {
            protos.push(Proto::Spanning); // aggregation requires connectivity
        }
        for proto in protos {
            let mut firsts = Vec::new();
            for fidelity in [trace::Fidelity::Digest, trace::Fidelity::Full] {
                let all = all_engine_bytes(&g, proto, fidelity);
                for (i, bytes) in all.iter().enumerate() {
                    prop_assert_eq!(
                        bytes, &all[0],
                        "{:?} at {} fidelity: engine #{} diverged from sequential",
                        proto, fidelity.name(), i
                    );
                }
                // The bytes are also a valid, canonical encoding: decoding
                // and re-encoding reproduces them exactly.
                let decoded = trace::Transcript::from_bytes(&all[0]).expect("valid transcript");
                prop_assert_eq!(decoded.to_bytes(), all[0].clone());
                firsts.push(decoded);
            }
            // Digest and full fidelity agree on every per-round record —
            // full is digest plus the message tuples, never a different
            // stream.
            let full = firsts.pop().unwrap();
            let digest = firsts.pop().unwrap();
            prop_assert_eq!(digest.rounds, full.rounds);
        }
    }
}
