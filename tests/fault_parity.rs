//! Property tests for the fault-injection layer (see `congest::faults`):
//!
//! 1. **Faulted transcript parity** — the same fault plan produces
//!    byte-identical serialized transcripts on the sequential engine and
//!    on the sharded engine at 1, 2, and 8 shards, for BFS, spanning
//!    aggregation, two-hop collection, and full listing (p = 3, 4).
//!    Faults are injected at the sorted-inbox choke point both engines
//!    share, so the schedule is keyed on shard-invariant coordinates.
//!    A chaos plan may break a protocol invariant and panic — that panic
//!    is part of the deterministic behavior, so the suite compares
//!    outcomes: all engines must agree on success bytes *or* on the
//!    panic message.
//! 2. **Zero-rate inertness** — a plan whose rates are all zero can never
//!    trip, so its round stream is identical to a fault-free run's.
//! 3. **Robust self-healing** — a robust-mode listing under planted fault
//!    rates answers exactly like the fault-free run, on every engine,
//!    while actually performing retries.

use clique_listing::{list_cliques_congest_with, ListingConfig};
use congest::engine::EngineSelect;
use congest::faults::{FaultMode, FaultPlan};
use congest::graph::Graph;
use congest::protocols::{aggregate_sum_on, collect_two_hop_on, distributed_bfs_on};
use congest::Sequential;
use proptest::prelude::*;
use runtime::Sharded;

#[derive(Clone, Copy, Debug)]
enum Proto {
    Bfs,
    Spanning,
    TwoHop,
    Listing(usize),
}

fn run_proto<S: EngineSelect>(sel: &S, g: &Graph, proto: Proto) {
    match proto {
        Proto::Bfs => {
            distributed_bfs_on(sel, g, 0);
        }
        Proto::Spanning => {
            let inputs: Vec<u64> = (0..g.n() as u64).map(|v| v * 3 + 1).collect();
            aggregate_sum_on(sel, g, &inputs);
        }
        Proto::TwoHop => {
            collect_two_hop_on(sel, g, 6, 1);
        }
        Proto::Listing(p) => {
            let cfg = ListingConfig { trace: trace::TraceMode::off(), ..ListingConfig::default() };
            list_cliques_congest_with(sel, g, p, &cfg);
        }
    }
}

/// One engine's deterministic outcome under a fault plan: the serialized
/// transcript, or the panic message when the plan broke the protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Outcome {
    Bytes(Vec<u8>),
    Panicked(String),
}

fn faulted_outcome<S: EngineSelect + std::panic::RefUnwindSafe>(
    sel: &S,
    g: &Graph,
    proto: Proto,
    mode: FaultMode,
) -> Outcome {
    let header = trace::Header {
        graph_fingerprint: trace::graph_fingerprint(g.n() as u64, g.edges()),
        protocol: format!("{proto:?}"),
        engine: "fault-parity-suite".into(),
        seed: 0,
        faults: mode.descriptor(),
    };
    let caught = std::panic::catch_unwind(|| {
        let ((), t) = trace::capture(trace::Fidelity::Full, header, || {
            congest::faults::with_mode(mode, || run_proto(sel, g, proto));
        });
        t.to_bytes()
    });
    match caught {
        Ok(bytes) => Outcome::Bytes(bytes),
        Err(payload) => Outcome::Panicked(panic_message(&payload)),
    }
}

fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn protos_for(g: &Graph) -> Vec<Proto> {
    let mut protos = vec![Proto::Bfs, Proto::TwoHop, Proto::Listing(3), Proto::Listing(4)];
    if g.is_connected() {
        protos.push(Proto::Spanning);
    }
    protos
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn faulted_transcripts_are_engine_and_shard_invariant(
        n in 12usize..24,
        seed in 0u64..1_000,
    ) {
        let p_edge = 0.15 + (seed % 10) as f64 / 30.0;
        let g = graphs::erdos_renyi(n, p_edge, seed);
        let modes = [
            FaultMode::Chaos(FaultPlan {
                seed: seed ^ 0x000C_4A05,
                drop_ppm: 30_000,
                corrupt_ppm: 15_000,
                crash_ppm: 8_000,
            }),
            FaultMode::Robust(FaultPlan {
                seed: seed ^ 0x0040_B057,
                drop_ppm: 120_000,
                corrupt_ppm: 60_000,
                crash_ppm: 4_000,
            }),
        ];
        for mode in modes {
            for proto in protos_for(&g) {
                let reference = faulted_outcome(&Sequential, &g, proto, mode);
                for shards in [1usize, 2, 8] {
                    let outcome = faulted_outcome(&Sharded::new(shards), &g, proto, mode);
                    prop_assert_eq!(
                        &outcome, &reference,
                        "{:?} under {} diverged at {} shards", proto, mode, shards
                    );
                }
            }
        }
    }

    #[test]
    fn zero_rate_plans_are_inert(
        n in 12usize..24,
        seed in 0u64..1_000,
    ) {
        let g = graphs::erdos_renyi(n, 0.25, seed);
        let zero = FaultPlan { seed: seed ^ 0xF00D, drop_ppm: 0, corrupt_ppm: 0, crash_ppm: 0 };
        for proto in protos_for(&g) {
            let baseline = faulted_outcome(&Sequential, &g, proto, FaultMode::Off);
            let Outcome::Bytes(baseline_bytes) = &baseline else {
                panic!("fault-free run must not panic");
            };
            let base = trace::Transcript::from_bytes(baseline_bytes).expect("valid transcript");
            for mode in [FaultMode::Chaos(zero), FaultMode::Robust(zero)] {
                let faulted = faulted_outcome(&Sequential, &g, proto, mode);
                let Outcome::Bytes(bytes) = &faulted else {
                    panic!("a zero-rate plan must not perturb the run");
                };
                let t = trace::Transcript::from_bytes(bytes).expect("valid transcript");
                // Headers legitimately differ (they describe the armed
                // plan); the round streams must not.
                prop_assert_eq!(
                    &t.rounds, &base.rounds,
                    "zero-rate {} perturbed {:?}", mode, proto
                );
            }
        }
    }

    #[test]
    fn robust_listing_answers_match_the_fault_free_run(
        n in 12usize..24,
        seed in 0u64..1_000,
        p in 3usize..5,
    ) {
        let g = graphs::erdos_renyi(n, 0.3, seed);
        let clean_cfg =
            ListingConfig { trace: trace::TraceMode::off(), ..ListingConfig::default() };
        let robust_cfg = ListingConfig {
            faults: FaultMode::Robust(FaultPlan {
                seed: seed ^ 0x5E1F_4EA1,
                drop_ppm: 150_000,
                corrupt_ppm: 80_000,
                crash_ppm: 5_000,
            }),
            ..clean_cfg.clone()
        };
        let baseline = list_cliques_congest_with(&Sequential, &g, p, &clean_cfg);
        let mut healed_somewhere = false;
        for shards in [1usize, 2, 8] {
            let out = list_cliques_congest_with(&Sharded::new(shards), &g, p, &robust_cfg);
            prop_assert_eq!(
                &out.cliques, &baseline.cliques,
                "robust listing p={} answered differently at {} shards", p, shards
            );
            healed_somewhere |= out.report.faults.retries > 0;
            prop_assert_eq!(
                out.report.faults.penalty_rounds > 0,
                out.report.faults.retries > 0 || out.report.faults.crashed > 0,
                "penalty rounds must move exactly with retries/crash recoveries"
            );
        }
        // At these rates a nontrivial graph always needs at least one
        // retry somewhere; an inert fault layer would vacuously pass the
        // answer check.
        if g.edges().count() >= 10 {
            prop_assert!(healed_somewhere, "fault plan never tripped — layer inert?");
        }
    }
}
