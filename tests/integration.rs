//! Cross-crate integration tests: the full pipeline — generators →
//! decomposition → partition trees → listing — validated end-to-end
//! against the centralized oracle (experiment E3's exactness claim).

use clique_listing::baselines::{
    dlp12_congested_clique, list_cliques_randomized, naive_exhaustive,
};
use clique_listing::{list_cliques_congest, ListingConfig};
use congest::graph::Graph;

fn assert_exact(g: &Graph, p: usize) {
    let out = list_cliques_congest(g, p, &ListingConfig::default());
    let expected = graphs::list_cliques(g, p);
    assert_eq!(out.cliques, expected, "p = {p}: distributed != oracle");
}

#[test]
fn exactness_across_families_p3() {
    assert_exact(&graphs::erdos_renyi(72, 0.12, 11), 3);
    assert_exact(&graphs::clustered(72, 3, 0.45, 0.02, 12), 3);
    assert_exact(&graphs::power_law(72, 4, 13), 3);
    assert_exact(&graphs::random_regular(72, 8, 14), 3);
    assert_exact(&graphs::planted_cliques(72, 0.05, 3, 8, 15), 3);
    assert_exact(&graphs::barbell(14, 3), 3);
}

#[test]
fn exactness_across_families_p4() {
    assert_exact(&graphs::erdos_renyi(56, 0.2, 21), 4);
    assert_exact(&graphs::clustered(56, 4, 0.5, 0.03, 22), 4);
    assert_exact(&graphs::planted_cliques(56, 0.08, 4, 5, 23), 4);
    assert_exact(&graphs::barbell(10, 2), 4);
}

#[test]
fn exactness_p5() {
    assert_exact(&graphs::planted_cliques(44, 0.1, 5, 3, 31), 5);
    assert_exact(&graphs::clustered(44, 2, 0.5, 0.03, 32), 5);
}

#[test]
fn all_algorithms_agree() {
    let g = graphs::erdos_renyi(48, 0.18, 41);
    let cfg = ListingConfig::default();
    let det = list_cliques_congest(&g, 3, &cfg);
    let rnd = list_cliques_randomized(&g, 3, &cfg, 5);
    let (naive, _) = naive_exhaustive(&g, 3, 1);
    let dlp = dlp12_congested_clique(&g, 3);
    assert_eq!(det.cliques, naive);
    assert_eq!(rnd.cliques, naive);
    assert_eq!(dlp.cliques, naive);
}

#[test]
fn deterministic_rounds_are_reproducible() {
    let g = graphs::clustered(64, 4, 0.4, 0.02, 51);
    let cfg = ListingConfig::default();
    let a = list_cliques_congest(&g, 3, &cfg);
    let b = list_cliques_congest(&g, 3, &cfg);
    assert_eq!(a.report.rounds(), b.report.rounds());
    assert_eq!(a.report.messages(), b.report.messages());
}

#[test]
fn recursion_makes_progress_every_level() {
    let g = graphs::erdos_renyi(80, 0.1, 61);
    let out = list_cliques_congest(&g, 3, &ListingConfig::default());
    assert!(!out.report.fallback_used, "fallback should not trigger on ER graphs");
    for l in &out.report.levels {
        assert!(l.resolved > 0, "level {} resolved nothing", l.level);
    }
}

#[test]
fn disconnected_graphs_are_handled() {
    // two separate communities, no bridge
    let mut edges = Vec::new();
    for u in 0..10u32 {
        for v in u + 1..10 {
            edges.push((u, v));
            edges.push((u + 10, v + 10));
        }
    }
    let g = Graph::from_edges(20, &edges);
    assert_exact(&g, 3);
    assert_exact(&g, 4);
}

#[test]
fn dense_graph_stress() {
    let g = graphs::erdos_renyi(40, 0.5, 71);
    assert_exact(&g, 3);
    assert_exact(&g, 4);
}

#[test]
fn bandwidth_speeds_up_but_preserves_output() {
    let g = graphs::erdos_renyi(56, 0.12, 81);
    let slow = list_cliques_congest(&g, 3, &ListingConfig::default());
    let fast =
        list_cliques_congest(&g, 3, &ListingConfig { bandwidth: 4, ..ListingConfig::default() });
    assert_eq!(slow.cliques, fast.cliques);
    assert!(fast.report.rounds() <= slow.report.rounds());
}
